"""SLO rules and the alert state machine over retained time series."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.obs.metrics import Registry
from repro.obs.slo import RULE_KINDS, SloEngine, SloRule, default_rules
from repro.obs.store import TimeSeriesRecorder


def _http_registry():
    """A registry shaped like the serving stack's error/traffic pair."""
    registry = Registry()
    errors = registry.counter("errors_total", "x").labels()
    requests = registry.counter("requests_total", "x").labels()
    return registry, errors, requests


class TestRuleValidation:
    def test_unknown_kind_rejected(self):
        rule = SloRule(name="r", kind="median", metric="m", threshold=1.0)
        with pytest.raises(ParameterError, match="kind"):
            rule.validate()

    def test_metric_required(self):
        rule = SloRule(name="r", kind="gauge", metric="", threshold=1.0)
        with pytest.raises(ParameterError, match="metric"):
            rule.validate()

    def test_ratio_kinds_need_a_denominator(self):
        for kind in ("error_rate", "burn_rate"):
            rule = SloRule(name="r", kind=kind, metric="m", threshold=1.0)
            with pytest.raises(ParameterError, match="denominator"):
                rule.validate()

    def test_latency_percentile_must_be_open_interval(self):
        rule = SloRule(name="r", kind="latency", metric="m",
                       threshold=1.0, percentile=1.0)
        with pytest.raises(ParameterError, match="percentile"):
            rule.validate()

    def test_burn_objective_must_be_open_interval(self):
        rule = SloRule(name="r", kind="burn_rate", metric="m",
                       denominator="d", threshold=1.0, objective=1.0)
        with pytest.raises(ParameterError, match="objective"):
            rule.validate()

    def test_windows_must_be_sane(self):
        rule = SloRule(name="r", kind="gauge", metric="m",
                       threshold=1.0, window_s=0.0)
        with pytest.raises(ParameterError, match="window_s"):
            rule.validate()

    def test_default_rules_all_validate(self):
        rules = default_rules()
        names = [r.name for r in rules]
        assert "sim-slo-violations" in names
        assert "http-availability-burn" in names
        for rule in rules:
            rule.validate()
            assert rule.kind in RULE_KINDS


class TestGaugeRules:
    def test_gauge_fires_immediately_at_for_zero(self):
        registry = Registry()
        gauge = registry.gauge("violations", "x").labels()
        recorder = TimeSeriesRecorder(registry)
        engine = SloEngine(recorder, rules=(
            SloRule(name="viol", kind="gauge", metric="violations",
                    threshold=0.0, window_s=60.0, for_s=0.0),
        ))
        recorder.sample(now=0.0)
        (state,) = engine.evaluate(now=0.0)
        assert state.state == "ok" and state.value == 0.0

        gauge.set(7)
        recorder.sample(now=1.0)
        (state,) = engine.evaluate(now=1.0)
        assert state.state == "firing"
        assert state.value == 7.0

        gauge.set(0)
        recorder.sample(now=2.0)
        (state,) = engine.evaluate(now=2.0)
        assert state.state == "ok"

    def test_unsampled_gauge_is_ok_with_detail(self):
        recorder = TimeSeriesRecorder(Registry())
        engine = SloEngine(recorder, rules=(
            SloRule(name="viol", kind="gauge", metric="violations",
                    threshold=0.0),
        ))
        (state,) = engine.evaluate(now=0.0)
        assert state.state == "ok"
        assert "not sampled" in state.detail

    def test_label_filter_selects_children(self):
        registry = Registry()
        gauge = registry.gauge("level", "x", labelnames=("shard",))
        gauge.labels("a").set(1)
        gauge.labels("b").set(9)
        recorder = TimeSeriesRecorder(registry)
        engine = SloEngine(recorder, rules=(
            SloRule(name="a-only", kind="gauge", metric="level",
                    threshold=5.0, labels=(("shard", "a"),)),
        ))
        recorder.sample(now=0.0)
        (state,) = engine.evaluate(now=0.0)
        assert state.state == "ok" and state.value == 1.0


class TestErrorRateAndBurn:
    def test_idle_service_is_not_failing(self):
        registry, _, _ = _http_registry()
        recorder = TimeSeriesRecorder(registry)
        engine = SloEngine(recorder, rules=(
            SloRule(name="err", kind="error_rate", metric="errors_total",
                    denominator="requests_total", threshold=0.05),
        ))
        recorder.sample(now=0.0)
        recorder.sample(now=10.0)
        (state,) = engine.evaluate(now=10.0)
        assert state.state == "ok" and state.value == 0.0

    def test_error_ratio_is_a_window_delta(self):
        registry, errors, requests = _http_registry()
        recorder = TimeSeriesRecorder(registry)
        engine = SloEngine(recorder, rules=(
            SloRule(name="err", kind="error_rate", metric="errors_total",
                    denominator="requests_total", threshold=0.05,
                    window_s=100.0),
        ))
        # history outside the window must not count
        errors.inc(1000)
        requests.inc(1000)
        recorder.sample(now=0.0)
        recorder.sample(now=1000.0)
        requests.inc(100)
        errors.inc(2)
        recorder.sample(now=1010.0)
        (state,) = engine.evaluate(now=1010.0)
        assert state.value == pytest.approx(0.02)
        assert state.state == "ok"

    def test_burn_rate_pending_then_firing_then_ok(self):
        """The full ok → pending → firing → ok escalation."""
        registry, errors, requests = _http_registry()
        recorder = TimeSeriesRecorder(registry)
        engine = SloEngine(recorder, rules=(
            SloRule(name="burn", kind="burn_rate", metric="errors_total",
                    denominator="requests_total", threshold=10.0,
                    objective=0.99, window_s=100.0, long_window_s=100.0,
                    for_s=30.0),
        ))
        recorder.sample(now=0.0)
        (state,) = engine.evaluate(now=0.0)
        assert state.state == "ok"

        # 50% errors against a 1% budget: burn = 50 > 10 → pending
        requests.inc(100)
        errors.inc(50)
        recorder.sample(now=10.0)
        (state,) = engine.evaluate(now=10.0)
        assert state.state == "pending"
        assert state.value == pytest.approx(50.0)
        assert state.breached_for_s == 0.0

        # still breached but not yet sustained for for_s
        (state,) = engine.evaluate(now=30.0)
        assert state.state == "pending"
        assert state.breached_for_s == pytest.approx(20.0)

        # sustained past for_s → firing
        (state,) = engine.evaluate(now=45.0)
        assert state.state == "firing"
        assert state.breached_for_s == pytest.approx(35.0)

        # errors age out of the window → back to ok, memory cleared
        recorder.sample(now=200.0)
        (state,) = engine.evaluate(now=200.0)
        assert state.state == "ok"
        assert state.breached_for_s == 0.0

    def test_min_of_short_and_long_burn_filters_blips(self):
        """A brief spike breaches the short window only — no alert."""
        registry, errors, requests = _http_registry()
        recorder = TimeSeriesRecorder(registry)
        engine = SloEngine(recorder, rules=(
            SloRule(name="burn", kind="burn_rate", metric="errors_total",
                    denominator="requests_total", threshold=10.0,
                    objective=0.99, window_s=50.0, long_window_s=1000.0),
        ))
        # long history: lots of clean traffic inside the long window
        recorder.sample(now=0.0)
        requests.inc(10_000)
        recorder.sample(now=960.0)
        # short burst of errors
        requests.inc(100)
        errors.inc(50)
        recorder.sample(now=970.0)
        (state,) = engine.evaluate(now=970.0)
        # short burn = 50; long burn = (50/10100)/0.01 ≈ 0.5 → min wins
        assert state.value < 1.0
        assert state.state == "ok"


class TestLatencyRules:
    def test_window_percentile_breaches_ceiling(self):
        registry = Registry()
        histogram = registry.histogram("latency_seconds", "x").labels()
        recorder = TimeSeriesRecorder(registry)
        engine = SloEngine(recorder, rules=(
            SloRule(name="p99", kind="latency", metric="latency_seconds",
                    threshold=0.5, percentile=0.99, window_s=100.0),
        ))
        recorder.sample(now=0.0)
        (state,) = engine.evaluate(now=0.0)
        assert state.state == "ok"
        assert "no observations" in state.detail

        for _ in range(100):
            histogram.observe(0.9)
        recorder.sample(now=10.0)
        (state,) = engine.evaluate(now=10.0)
        assert state.state == "firing"
        assert state.value > 0.5

    def test_stale_slowness_outside_window_is_forgiven(self):
        registry = Registry()
        histogram = registry.histogram("latency_seconds", "x").labels()
        recorder = TimeSeriesRecorder(registry)
        engine = SloEngine(recorder, rules=(
            SloRule(name="p99", kind="latency", metric="latency_seconds",
                    threshold=0.5, window_s=100.0),
        ))
        for _ in range(100):
            histogram.observe(9.0)
        recorder.sample(now=0.0)
        recorder.sample(now=1000.0)
        for _ in range(100):
            histogram.observe(0.001)
        recorder.sample(now=1010.0)
        (state,) = engine.evaluate(now=1010.0)
        assert state.state == "ok"
        assert state.value < 0.5


class TestEngineHousekeeping:
    def test_reset_forgets_breach_memory(self):
        registry = Registry()
        gauge = registry.gauge("violations", "x").labels()
        recorder = TimeSeriesRecorder(registry)
        engine = SloEngine(recorder, rules=(
            SloRule(name="viol", kind="gauge", metric="violations",
                    threshold=0.0, for_s=100.0),
        ))
        gauge.set(1)
        recorder.sample(now=0.0)
        engine.evaluate(now=0.0)
        (state,) = engine.evaluate(now=50.0)
        assert state.breached_for_s == pytest.approx(50.0)
        engine.reset()
        (state,) = engine.evaluate(now=60.0)
        assert state.breached_for_s == 0.0
        assert state.state == "pending"

    def test_invalid_rules_rejected_at_construction(self):
        with pytest.raises(ParameterError):
            SloEngine(TimeSeriesRecorder(Registry()), rules=(
                SloRule(name="r", kind="nope", metric="m", threshold=1.0),
            ))

    def test_states_come_back_in_declaration_order(self):
        recorder = TimeSeriesRecorder(Registry())
        engine = SloEngine(recorder, rules=(
            SloRule(name="b", kind="gauge", metric="m", threshold=1.0),
            SloRule(name="a", kind="gauge", metric="m", threshold=1.0),
        ))
        assert [s.rule for s in engine.evaluate(now=0.0)] == ["b", "a"]

"""Retained telemetry: the trace store, time-series rings, waterfalls."""

from __future__ import annotations

import threading

from repro.obs.metrics import Registry
from repro.obs.store import (
    SpanNode,
    TimeSeriesRecorder,
    TraceRecord,
    TraceStore,
    render_waterfall,
)


def _fill(store: TraceStore, trace_id: str, spans: int = 1,
          slow: bool = False) -> None:
    for i in range(spans):
        store.record(trace_id, i + 1, None if i == 0 else 1,
                     f"s{i}", float(i), 0.5, slow and i == spans - 1)


class TestTraceStoreRetention:
    def test_round_trip_preserves_tree_shape(self):
        store = TraceStore()
        store.record("t", 7, None, "root", 100.0, 0.9, False)
        store.record("t", 8, 7, "child", 100.2, 0.3, False)
        record = store.get("t")
        assert record.trace_id == "t"
        assert record.dropped == 0 and not record.slow
        root, child = record.spans
        assert (root.name, root.parent_id) == ("root", None)
        assert (child.name, child.parent_id) == ("child", 7)
        # offsets rebase to the earliest start; duration spans to the
        # latest end
        assert root.start_s == 0.0
        assert abs(child.start_s - 0.2) < 1e-9
        assert abs(record.duration_s - 0.9) < 1e-9

    def test_recent_ring_evicts_fifo(self):
        store = TraceStore(max_traces=3)
        for i in range(5):
            _fill(store, f"t{i}")
        assert store.get("t0") is None and store.get("t1") is None
        assert store.trace_ids() == ("t2", "t3", "t4")

    def test_slow_trace_survives_recent_churn(self):
        store = TraceStore(max_traces=2, max_slow=2)
        _fill(store, "slow-one", spans=2, slow=True)
        for i in range(10):
            _fill(store, f"churn{i}")
        record = store.get("slow-one")
        assert record is not None and record.slow
        # slow ids list first, then the surviving recent ids
        assert store.trace_ids()[0] == "slow-one"

    def test_slow_ring_is_bounded_fifo_too(self):
        store = TraceStore(max_slow=2)
        for i in range(4):
            _fill(store, f"s{i}", slow=True)
        assert store.get("s0") is None and store.get("s1") is None
        assert store.get("s2").slow and store.get("s3").slow

    def test_span_cap_counts_dropped_spans(self):
        store = TraceStore(max_spans=4)
        for i in range(10):
            store.record("t", i + 1, None, f"s{i}", float(i), 0.1, False)
        record = store.get("t")
        assert len(record.spans) == 4
        assert record.dropped == 6
        assert "6 spans dropped" in render_waterfall(record)

    def test_late_slow_span_promotes_the_whole_trace(self):
        store = TraceStore()
        store.record("t", 1, None, "root", 0.0, 0.1, False)
        store.record("t", 2, 1, "slow-child", 0.05, 2.0, True)
        assert store.stats()["slow_traces"] == 1
        assert store.stats()["recent_traces"] == 0
        assert len(store.get("t").spans) == 2

    def test_unknown_trace_is_none(self):
        assert TraceStore().get("nope") is None

    def test_clear_empties_both_rings(self):
        store = TraceStore()
        _fill(store, "a")
        _fill(store, "b", slow=True)
        store.clear()
        assert store.trace_ids() == ()

    def test_concurrent_recording_stays_bounded(self):
        """Hammering from threads never exceeds the configured caps."""
        store = TraceStore(max_traces=16, max_slow=4, max_spans=8)

        def worker(seed: int) -> None:
            for i in range(500):
                trace = f"t{(seed * 500 + i) % 40}"
                store.record(trace, seed * 1000 + i, None, "s",
                             float(i), 0.001, i % 97 == 0)

        threads = [
            threading.Thread(target=worker, args=(k,)) for k in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = store.stats()
        assert stats["recent_traces"] <= 16
        assert stats["slow_traces"] <= 4
        assert stats["recent_spans"] <= 16 * 8
        assert stats["slow_spans"] <= 4 * 8
        for trace_id in store.trace_ids():
            assert len(store.get(trace_id).spans) <= 8


class TestTimeSeriesRecorder:
    def test_ring_capacity_evicts_oldest(self):
        recorder = TimeSeriesRecorder(Registry(), capacity=3)
        for ts in range(5):
            recorder.sample(now=float(ts))
        assert len(recorder) == 3
        window = recorder.samples_in(100.0, now=4.0)
        assert [ts for ts, _ in window] == [2.0, 3.0, 4.0]

    def test_window_filter_drops_stale_samples(self):
        recorder = TimeSeriesRecorder(Registry())
        for ts in (0.0, 10.0, 20.0, 30.0):
            recorder.sample(now=ts)
        window = recorder.samples_in(15.0, now=30.0)
        assert [ts for ts, _ in window] == [20.0, 30.0]

    def test_counter_rate_from_window_delta(self):
        registry = Registry()
        counter = registry.counter("jobs_total", "x").labels()
        recorder = TimeSeriesRecorder(registry)
        recorder.sample(now=0.0)
        counter.inc(30)
        recorder.sample(now=10.0)
        rollup = recorder.rollup(60.0, now=10.0)
        assert rollup.samples == 2 and rollup.span_s == 10.0
        row = next(s for s in rollup.series if s.name == "jobs_total")
        assert row.kind == "counter"
        assert row.last == 30.0
        assert row.rate_per_s == 3.0

    def test_gauge_min_max_mean(self):
        registry = Registry()
        gauge = registry.gauge("level", "x").labels()
        recorder = TimeSeriesRecorder(registry)
        for ts, value in ((0.0, 2.0), (1.0, 8.0), (2.0, 5.0)):
            gauge.set(value)
            recorder.sample(now=ts)
        row = recorder.rollup(60.0, now=2.0).series[0]
        assert row.kind == "gauge"
        assert (row.minimum, row.maximum, row.mean) == (2.0, 8.0, 5.0)
        assert row.rate_per_s is None
        assert row.p99_s is None

    def test_single_sample_has_no_rate(self):
        registry = Registry()
        registry.counter("jobs_total", "x").labels().inc()
        recorder = TimeSeriesRecorder(registry)
        recorder.sample(now=0.0)
        row = recorder.rollup(60.0, now=0.0).series[0]
        assert row.rate_per_s is None
        assert row.last == 1.0

    def test_prefix_filters_series(self):
        registry = Registry()
        registry.counter("a_total", "x").labels().inc()
        registry.counter("b_total", "x").labels().inc()
        recorder = TimeSeriesRecorder(registry)
        recorder.sample(now=0.0)
        rollup = recorder.rollup(60.0, prefix="a_", now=0.0)
        assert [s.name for s in rollup.series] == ["a_total"]

    def test_histogram_percentiles_match_scalar_reference(self):
        """Window p50/p95/p99 agree with the sorted-data quantiles to
        within one bucket's width (the estimator's resolution)."""
        buckets = tuple((i + 1) / 100.0 for i in range(100))  # 10ms steps
        registry = Registry()
        histogram = registry.histogram(
            "latency_seconds", "x", buckets=buckets
        ).labels()
        recorder = TimeSeriesRecorder(registry)
        recorder.sample(now=0.0)
        observations = [(7 * k % 100) / 100.0 + 0.005 for k in range(100)]
        for value in observations:
            histogram.observe(value)
        recorder.sample(now=10.0)
        row = recorder.rollup(60.0, now=10.0).series[0]

        def reference(q: float) -> float:
            data = sorted(observations)
            return data[min(int(q * len(data)), len(data) - 1)]

        for got, q in ((row.p50_s, 0.50), (row.p95_s, 0.95),
                       (row.p99_s, 0.99)):
            assert abs(got - reference(q)) <= 0.011, (q, got, reference(q))
        assert abs(row.mean - sum(observations) / 100.0) < 1e-9
        assert row.rate_per_s == 10.0

    def test_histogram_delta_excludes_prior_observations(self):
        """Only in-window observations shape the window percentiles."""
        registry = Registry()
        histogram = registry.histogram("latency_seconds", "x").labels()
        recorder = TimeSeriesRecorder(registry)
        for _ in range(50):
            histogram.observe(9.0)  # stale: before the window's start
        recorder.sample(now=0.0)
        for _ in range(50):
            histogram.observe(0.002)
        recorder.sample(now=10.0)
        row = recorder.rollup(60.0, now=10.0).series[0]
        assert row.p99_s < 0.01  # the stale 9s observations don't leak
        assert abs(row.mean - 0.002) < 1e-9

    def test_quiet_histogram_reports_no_percentiles(self):
        registry = Registry()
        registry.histogram("latency_seconds", "x").labels()
        recorder = TimeSeriesRecorder(registry)
        recorder.sample(now=0.0)
        recorder.sample(now=10.0)
        row = recorder.rollup(60.0, now=10.0).series[0]
        assert row.p50_s is None and row.mean is None
        assert row.rate_per_s == 0.0

    def test_empty_ring_rolls_up_to_nothing(self):
        recorder = TimeSeriesRecorder(Registry())
        rollup = recorder.rollup(60.0, now=0.0)
        assert rollup.samples == 0 and rollup.series == ()

    def test_latest_reads_the_newest_snapshot(self):
        registry = Registry()
        gauge = registry.gauge("level", "x").labels()
        recorder = TimeSeriesRecorder(registry)
        assert recorder.latest("level") is None
        gauge.set(4.0)
        recorder.sample(now=0.0)
        gauge.set(9.0)
        recorder.sample(now=1.0)
        assert recorder.latest("level").value == 9.0
        assert recorder.latest("missing") is None


class TestWaterfall:
    def test_tree_renders_indented_and_positioned(self):
        record = TraceRecord(
            trace_id="abc", slow=False, dropped=0, duration_s=1.0,
            spans=(
                SpanNode(1, None, "dispatch.budget", 0.0, 1.0),
                SpanNode(2, 1, "grid.slice", 0.0, 0.25),
                SpanNode(3, 1, "grid.evaluate", 0.5, 0.5),
            ),
        )
        text = render_waterfall(record, width=8)
        lines = text.splitlines()
        assert lines[0].startswith("trace abc  (3 spans, 1000.00 ms)")
        assert lines[1].lstrip().startswith("dispatch.budget")
        assert lines[2].lstrip().startswith("grid.slice")
        assert "  grid.slice" in lines[2]  # children indent two spaces
        assert "|████████|" in lines[1]    # root fills the whole track
        assert "|██······|" in lines[2]    # first quarter
        assert "|····████|" in lines[3]    # second half
        assert lines[1].rstrip().endswith("1000.000 ms")

    def test_orphan_spans_render_as_roots(self):
        record = TraceRecord(
            trace_id="x", slow=True, dropped=2, duration_s=0.5,
            spans=(SpanNode(9, 4, "orphan", 0.0, 0.5),),
        )
        text = render_waterfall(record)
        assert "slow" in text.splitlines()[0]
        assert "2 spans dropped" in text.splitlines()[0]
        assert text.splitlines()[1].startswith("orphan")

    def test_empty_trace_renders_placeholder(self):
        record = TraceRecord("x", False, 0, 0.0, ())
        assert "(no spans retained)" in render_waterfall(record)

"""paperdata: reproduction targets and ready-made models."""

import pytest

from repro.npb.workloads import HEADLINE_BENCHMARKS
from repro.paperdata import (
    EXPECTED_SHAPES,
    PAPER_ALPHA,
    PAPER_EP_WC_PER_PAIR,
    PAPER_GAMMA,
    PAPER_MEAN_ERROR_PCT,
    PAPER_P_SWEEP,
    paper_clusters,
    paper_machine,
    paper_model,
)


def test_error_targets_present_for_headline_benchmarks():
    assert set(PAPER_MEAN_ERROR_PCT) == set(HEADLINE_BENCHMARKS)
    # CG is the paper's worst case, FT its best
    assert PAPER_MEAN_ERROR_PCT["CG"] > PAPER_MEAN_ERROR_PCT["EP"]
    assert PAPER_MEAN_ERROR_PCT["FT"] < PAPER_MEAN_ERROR_PCT["EP"]


def test_alphas_match_section5():
    assert PAPER_ALPHA == {"FT": 0.86, "EP": 0.93, "CG": 0.85}


def test_workloads_carry_paper_alphas():
    for name, alpha in PAPER_ALPHA.items():
        model, _ = paper_model(name)
        ap = model.app_params(1e6 if name != "FT" else 2**20, 1)
        assert ap.alpha == pytest.approx(alpha)


def test_ep_coefficient_in_workload():
    model, _ = paper_model("EP")
    ap = model.app_params(1e6, 1)
    assert ap.wc == pytest.approx(PAPER_EP_WC_PER_PAIR * 1e6)


def test_machine_gamma_matches_paper():
    m = paper_machine("FT")
    assert m.gamma == PAPER_GAMMA


def test_per_benchmark_cpi(paper_names=("EP", "FT", "CG")):
    tcs = {name: paper_machine(name).tc for name in paper_names}
    # §IV-B measures tc per application: CG stalls hardest, EP least
    assert tcs["CG"] > tcs["FT"] > tcs["EP"]


def test_p_sweep_is_fig4():
    assert PAPER_P_SWEEP == (1, 2, 4, 8, 16, 32, 64, 128)


def test_paper_model_evaluates(machine):
    model, n = paper_model("FT", klass="B")
    pt = model.evaluate(n=n, p=64)
    assert 0 < pt.ee < 1


def test_paper_clusters_scale():
    clusters = paper_clusters()
    assert len(clusters["SystemG"]) == 128
    assert len(clusters["Dori"]) == 8


def test_expected_shapes_cover_every_figure():
    figures = {s.figure for s in EXPECTED_SHAPES}
    assert figures == {
        "fig2a", "fig2b", "fig3", "fig4", "fig5",
        "fig6", "fig7", "fig8", "fig9", "fig10",
    }

"""Energy model: Eqs. (13), (15), (16), (18)."""

import pytest

from repro.core.energy import (
    delta_energy,
    parallel_energy,
    parallel_energy_breakdown,
    sequential_energy,
    sequential_energy_breakdown,
)
from repro.core.parameters import AppParams
from repro.core.performance import sequential_time, total_parallel_time
from repro.errors import ParameterError


def test_e1_closed_form_eq13(machine, seq_app):
    t1 = sequential_time(machine, seq_app)
    expected = (
        t1 * machine.p_system_idle
        + seq_app.wc * machine.tc * machine.delta_pc
        + seq_app.wm * machine.tm * machine.delta_pm
    )
    assert sequential_energy(machine, seq_app) == pytest.approx(expected)


def test_ep_closed_form_eq15(machine, app):
    sum_ti = total_parallel_time(machine, app, 16)
    expected = (
        sum_ti * machine.p_system_idle
        + (app.wc + app.wco) * machine.tc * machine.delta_pc
        + (app.wm + app.wmo) * machine.tm * machine.delta_pm
    )
    assert parallel_energy(machine, app, 16) == pytest.approx(expected)


def test_delta_identity_eq16(machine, app):
    """ΔE computed in closed form must equal Ep − E1 (Eq. 1 vs Eq. 16)."""
    de = delta_energy(machine, app, 16)
    ep = parallel_energy(machine, app, 16)
    e1 = sequential_energy(machine, app)
    assert de == pytest.approx(ep - e1, rel=1e-12)


def test_delta_zero_at_p1(machine, seq_app):
    assert delta_energy(machine, seq_app, 1) == 0.0


def test_parallel_energy_exceeds_sequential(machine, app):
    assert parallel_energy(machine, app, 16) > sequential_energy(machine, app)


def test_no_overheads_means_no_delta(machine):
    clean = AppParams(alpha=0.9, wc=1e10, wm=2e8, p=8)
    assert delta_energy(machine, clean, 8) == pytest.approx(0.0)
    assert parallel_energy(machine, clean, 8) == pytest.approx(
        sequential_energy(machine, clean)
    )


def test_breakdown_sums_to_total(machine, app):
    bd = parallel_energy_breakdown(machine, app, 16)
    assert bd.total == pytest.approx(parallel_energy(machine, app, 16))
    assert bd.idle > 0 and bd.cpu_active > 0 and bd.memory_active > 0


def test_breakdown_as_dict(machine, seq_app):
    d = sequential_energy_breakdown(machine, seq_app).as_dict()
    assert set(d) == {"idle", "cpu_active", "memory_active", "io_active", "total"}
    assert d["total"] == pytest.approx(sequential_energy(machine, seq_app))


def test_io_energy_term(machine):
    with_io = AppParams(alpha=0.9, wc=1e10, wm=0.0, t_io=10.0, p=1)
    bd = sequential_energy_breakdown(machine, with_io)
    assert bd.io_active == pytest.approx(10.0 * machine.delta_pio)


def test_p1_parallel_equals_sequential(machine, seq_app):
    assert parallel_energy(machine, seq_app, 1) == pytest.approx(
        sequential_energy(machine, seq_app)
    )


def test_overlap_reduces_idle_energy_not_active(machine):
    tight = AppParams(alpha=0.7, wc=1e10, wm=2e8, p=1)
    loose = AppParams(alpha=1.0, wc=1e10, wm=2e8, p=1)
    bd_tight = sequential_energy_breakdown(machine, tight)
    bd_loose = sequential_energy_breakdown(machine, loose)
    assert bd_tight.idle == pytest.approx(0.7 * bd_loose.idle)
    assert bd_tight.cpu_active == pytest.approx(bd_loose.cpu_active)


def test_invalid_p_rejected(machine, app):
    with pytest.raises(ParameterError):
        parallel_energy(machine, app, 0)
    with pytest.raises(ParameterError):
        delta_energy(machine, app, -3)

"""Composite I/O components and the flat-model folding."""

import pytest

from repro.core.energy import sequential_energy
from repro.core.iomodel import (
    IoComponent,
    IoPattern,
    checkpoint_pattern,
    composite_io,
    machine_with_io,
    nfs_client,
    sata_disk,
    with_io,
)
from repro.core.parameters import AppParams
from repro.errors import ParameterError


def test_component_time_model():
    disk = sata_disk()
    t = disk.time_for(nbytes=90e6, operations=1)
    assert t == pytest.approx(8e-3 + 1.0)


def test_component_validation():
    with pytest.raises(ParameterError):
        IoComponent(name="x", delta_p=-1, bandwidth=1e6, access_latency=0)
    with pytest.raises(ParameterError):
        IoComponent(name="x", delta_p=1, bandwidth=0, access_latency=0)
    with pytest.raises(ParameterError):
        sata_disk().time_for(-1)


def test_pattern_energy():
    pattern = IoPattern(component=sata_disk(), bytes_total=900e6, operations=10)
    assert pattern.energy == pytest.approx(pattern.time * 6.0)


def test_composite_preserves_energy():
    patterns = [
        IoPattern(component=sata_disk(), bytes_total=1e9, operations=100),
        IoPattern(component=nfs_client(), bytes_total=5e8, operations=20),
    ]
    t_io, delta_pio = composite_io(patterns)
    assert t_io == pytest.approx(sum(p.time for p in patterns))
    assert t_io * delta_pio == pytest.approx(sum(p.energy for p in patterns))


def test_composite_empty():
    assert composite_io([]) == (0.0, 0.0)


def test_checkpoint_pattern():
    ckpt = checkpoint_pattern(sata_disk(), data_bytes=2e9, intervals=5)
    assert ckpt.bytes_total == pytest.approx(1e10)
    assert ckpt.operations == 5
    with pytest.raises(ParameterError):
        checkpoint_pattern(sata_disk(), data_bytes=1.0, intervals=0)


def test_end_to_end_io_energy_term(machine):
    """Folding I/O into Θ1/Θ2 must add exactly the component energy to E1."""
    base = AppParams(alpha=0.9, wc=1e10, wm=1e8, p=1)
    patterns = [checkpoint_pattern(sata_disk(), data_bytes=2e9, intervals=4)]

    app_io = with_io(base, patterns)
    mach_io = machine_with_io(machine, patterns)

    e_without = sequential_energy(machine, base)
    e_with = sequential_energy(mach_io, app_io)

    t_io, delta_pio = composite_io(patterns)
    expected_extra = (
        t_io * delta_pio  # active I/O energy
        + base.alpha * t_io * machine.p_system_idle  # longer runtime at idle
    )
    assert e_with - e_without == pytest.approx(expected_extra)


def test_io_heavy_job_dominated_by_io_bottleneck(machine):
    """A checkpoint-heavy run's EEF gains an I/O-driven idle-time term."""
    from repro.core.performance import sequential_time

    base = AppParams(alpha=0.9, wc=1e9, wm=1e6, p=1)
    patterns = [checkpoint_pattern(sata_disk(), data_bytes=8e9, intervals=10)]
    app_io = with_io(base, patterns)
    t_plain = sequential_time(machine, base)
    t_io_run = sequential_time(machine, app_io)
    assert t_io_run > 2 * t_plain  # I/O dominates this configuration

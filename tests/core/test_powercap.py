"""Power-constrained configuration search."""

import pytest

from repro.core.model import IsoEnergyModel
from repro.core.powercap import (
    average_power,
    cap_for_scaling,
    fastest_under_cap,
    feasible_configs,
    greenest_under_deadline,
    scaling_report,
)
from repro.errors import ParameterError
from repro.npb.ft import FtWorkload
from repro.units import GHZ

FREQS = [1.6 * GHZ, 2.0 * GHZ, 2.4 * GHZ, 2.8 * GHZ]
PS = [1, 2, 4, 8, 16, 32, 64]


@pytest.fixture()
def model(machine):
    return IsoEnergyModel(machine, FtWorkload(niter=5), name="FT")


@pytest.fixture()
def n():
    return float(2**24)


def test_average_power_is_ep_over_tp(model, n):
    pt = model.evaluate(n=n, p=8)
    assert average_power(model, n=n, p=8) == pytest.approx(pt.ep / pt.tp)


def test_average_power_grows_with_p(model, n):
    assert average_power(model, n=n, p=32) > average_power(model, n=n, p=4)


def test_feasible_configs_respect_cap(model, n):
    cap = average_power(model, n=n, p=8) * 1.01
    configs = feasible_configs(
        model, n=n, power_cap=cap, p_values=PS, frequencies=FREQS
    )
    assert configs
    assert all(c.avg_power <= cap for c in configs)
    assert all(c.p <= 16 for c in configs)  # 32+ nodes cannot fit this cap


def test_fastest_under_cap_is_fastest(model, n):
    cap = average_power(model, n=n, p=16) * 1.05
    best = fastest_under_cap(
        model, n=n, power_cap=cap, p_values=PS, frequencies=FREQS
    )
    for c in feasible_configs(
        model, n=n, power_cap=cap, p_values=PS, frequencies=FREQS
    ):
        assert best.tp <= c.tp + 1e-12


def test_larger_cap_never_slower(model, n):
    small = fastest_under_cap(
        model, n=n, power_cap=800.0, p_values=PS, frequencies=FREQS
    )
    large = fastest_under_cap(
        model, n=n, power_cap=4000.0, p_values=PS, frequencies=FREQS
    )
    assert large.tp <= small.tp


def test_impossible_cap_rejected(model, n):
    with pytest.raises(ParameterError, match="no \\(p, f\\)"):
        fastest_under_cap(
            model, n=n, power_cap=1.0, p_values=PS, frequencies=FREQS
        )


def test_greenest_under_deadline(model, n):
    t_serial = model.evaluate(n=n, p=1).t1
    cfg = greenest_under_deadline(
        model, n=n, deadline=t_serial, p_values=PS, frequencies=FREQS
    )
    assert cfg.tp <= t_serial
    # with a generous deadline, the greenest config is small and slow
    assert cfg.p <= 4


def test_unmeetable_deadline_rejected(model, n):
    with pytest.raises(ParameterError, match="deadline"):
        greenest_under_deadline(
            model, n=n, deadline=1e-9, p_values=PS, frequencies=FREQS
        )


def test_cap_for_scaling_and_report_consistent(model, n):
    mult = cap_for_scaling(model, n=n, p_from=1, p_to=64)
    report = scaling_report(model, n=n, p_values=[1, 64])
    assert report[1][2] == pytest.approx(mult)
    # scaling 64x multiplies power by less than 64x per processor? no —
    # total power grows roughly with p; sanity: more than 16x, less than 70x
    assert 16 < mult < 70


def test_speedup_per_power_degrades_with_overheads(model, n):
    report = scaling_report(model, n=n, p_values=[1, 4, 16, 64])
    spp = [row[3] for row in report]
    assert spp[0] == pytest.approx(1.0)
    assert spp[-1] < 1.0  # FT loses perf-per-watt as it scales
    assert spp == sorted(spp, reverse=True)


def test_ideal_workload_holds_speedup_per_power(machine, n):
    from repro.core.parameters import AppParams

    ideal = IsoEnergyModel(
        machine, lambda n, p: AppParams(alpha=0.9, wc=1e10, wm=1e8, p=p)
    )
    report = scaling_report(ideal, n=n, p_values=[1, 16, 256])
    for _, _, _, spp in report:
        assert spp == pytest.approx(1.0, rel=1e-9)


def test_empty_axes_rejected(model, n):
    with pytest.raises(ParameterError):
        feasible_configs(model, n=n, power_cap=100.0, p_values=[], frequencies=FREQS)
    with pytest.raises(ParameterError):
        scaling_report(model, n=n, p_values=[])

"""Related-work baselines: isoefficiency, power-aware speedup, ERE."""

import pytest

from repro.core.baselines import (
    ere_metric,
    grama_isoefficiency_overhead,
    isoefficiency_constant,
    performance_efficiency,
    power_aware_speedup,
)
from repro.core.parameters import AppParams
from repro.core.performance import parallel_time, sequential_time
from repro.errors import ParameterError
from repro.units import GHZ


def test_perf_efficiency_definition(machine, app):
    t1 = sequential_time(machine, app)
    tp = parallel_time(machine, app, 16)
    assert performance_efficiency(machine, app, 16) == pytest.approx(
        t1 / (16 * tp)
    )


def test_perf_efficiency_ideal_is_one(machine):
    clean = AppParams(alpha=0.9, wc=1e10, wm=2e8, p=8)
    assert performance_efficiency(machine, clean, 8) == pytest.approx(1.0)


def test_overhead_to_definition(machine, app):
    to = grama_isoefficiency_overhead(machine, app, 16)
    t1 = sequential_time(machine, app)
    tp = parallel_time(machine, app, 16)
    assert to == pytest.approx(16 * tp - t1)
    assert to > 0


def test_overhead_links_to_efficiency(machine, app):
    """E = T1/(T1 + To) — Grama's identity."""
    to = grama_isoefficiency_overhead(machine, app, 16)
    t1 = sequential_time(machine, app)
    assert performance_efficiency(machine, app, 16) == pytest.approx(
        t1 / (t1 + to)
    )


def test_isoefficiency_constant():
    assert isoefficiency_constant(0.5) == pytest.approx(1.0)
    assert isoefficiency_constant(0.8) == pytest.approx(4.0)
    with pytest.raises(ParameterError):
        isoefficiency_constant(1.0)


def test_power_aware_speedup_at_reference_matches_plain(machine, app):
    from repro.core.performance import speedup

    s = power_aware_speedup(machine, app, 16, f=machine.f)
    assert s == pytest.approx(speedup(machine, app, 16))


def test_power_aware_speedup_drops_at_low_frequency(machine, app):
    s_hi = power_aware_speedup(machine, app, 16, f=2.8 * GHZ)
    s_lo = power_aware_speedup(machine, app, 16, f=1.4 * GHZ)
    assert s_lo < s_hi


def test_low_frequency_hurts_compute_bound_more(machine):
    compute_bound = AppParams(alpha=0.9, wc=1e11, wm=1e6, p=8)
    memory_bound = AppParams(alpha=0.9, wc=1e8, wm=1e9, p=8)
    drop_c = power_aware_speedup(
        machine, compute_bound, 8, f=1.4 * GHZ
    ) / power_aware_speedup(machine, compute_bound, 8, f=2.8 * GHZ)
    drop_m = power_aware_speedup(
        machine, memory_bound, 8, f=1.4 * GHZ
    ) / power_aware_speedup(machine, memory_bound, 8, f=2.8 * GHZ)
    assert drop_c < drop_m  # compute-bound suffers more from DVFS


def test_ere_ideal_equals_speedup(machine):
    clean = AppParams(alpha=0.9, wc=1e10, wm=2e8, p=8)
    assert ere_metric(machine, clean, 8) == pytest.approx(8.0)


def test_ere_penalized_by_energy_overhead(machine, app):
    from repro.core.performance import speedup

    assert ere_metric(machine, app, 16) < speedup(machine, app, 16)


def test_invalid_p(machine, app):
    for fn in (performance_efficiency, grama_isoefficiency_overhead, ere_metric):
        with pytest.raises(ParameterError):
            fn(machine, app, 0)

"""EEF and EE: Eqs. (19) and (21)."""

import pytest

from repro.core.efficiency import dominant_overhead, eef, eef_terms, energy_efficiency
from repro.core.energy import delta_energy, sequential_energy
from repro.core.parameters import AppParams
from repro.errors import ParameterError


def test_eef_is_delta_over_e1(machine, app):
    expected = delta_energy(machine, app, 16) / sequential_energy(machine, app)
    assert eef(machine, app, 16) == pytest.approx(expected)


def test_ee_is_one_over_one_plus_eef(machine, app):
    assert energy_efficiency(machine, app, 16) == pytest.approx(
        1.0 / (1.0 + eef(machine, app, 16))
    )


def test_ee_equals_e1_over_ep(machine, app):
    from repro.core.energy import parallel_energy

    assert energy_efficiency(machine, app, 16) == pytest.approx(
        sequential_energy(machine, app) / parallel_energy(machine, app, 16)
    )


def test_ideal_case_gives_ee_one(machine):
    clean = AppParams(alpha=0.9, wc=1e10, wm=2e8, p=8)
    assert eef(machine, clean, 8) == pytest.approx(0.0)
    assert energy_efficiency(machine, clean, 8) == pytest.approx(1.0)


def test_ee_bounded(machine, app):
    ee = energy_efficiency(machine, app, 16)
    assert 0.0 < ee <= 1.0


def test_eef_terms_sum_to_delta(machine, app):
    terms = eef_terms(machine, app, 16)
    numerator = (
        terms["compute_overhead"]
        + terms["memory_overhead"]
        + terms["message_startup"]
        + terms["byte_transmission"]
    )
    assert numerator == pytest.approx(delta_energy(machine, app, 16))
    assert terms["sequential_energy"] == pytest.approx(
        sequential_energy(machine, app)
    )


def test_dominant_overhead_picks_largest(machine):
    startup_heavy = AppParams(
        alpha=0.9, wc=1e10, wm=2e8, m_messages=1e9, b_bytes=0.0, p=8
    )
    assert dominant_overhead(machine, startup_heavy, 8) == "message_startup"
    mem_heavy = AppParams(alpha=0.9, wc=1e10, wm=2e8, wmo=1e8, p=8)
    assert dominant_overhead(machine, mem_heavy, 8) == "memory_overhead"


def test_eef_increases_with_overhead(machine):
    small = AppParams(alpha=0.9, wc=1e10, wm=2e8, wmo=1e6, p=8)
    large = AppParams(alpha=0.9, wc=1e10, wm=2e8, wmo=1e8, p=8)
    assert eef(machine, large, 8) > eef(machine, small, 8)


def test_invalid_p_rejected(machine, app):
    with pytest.raises(ParameterError):
        eef(machine, app, 0)

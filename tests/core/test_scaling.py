"""Iso-contours, frequency tuning, parallelism bounds."""

import pytest

from repro.core.model import IsoEnergyModel
from repro.core.scaling import (
    ee_frequency_sensitivity,
    frequency_for_best_ee,
    iso_contour,
    iso_workload,
    max_parallelism,
)
from repro.errors import ParameterError
from repro.npb.ep import EpWorkload
from repro.npb.ft import FtWorkload
from repro.units import GHZ


@pytest.fixture()
def ft_model(machine):
    return IsoEnergyModel(machine, FtWorkload(niter=5), name="FT")


@pytest.fixture()
def ep_model(machine):
    return IsoEnergyModel(machine, EpWorkload(), name="EP")


class TestIsoWorkload:
    # FT's memory overhead per point is constant in n, so EE saturates
    # below 1 as n → ∞ (≈0.77 at p=256); targets must sit below that.
    def test_solution_hits_target(self, ft_model):
        target = 0.70
        n = iso_workload(
            ft_model, p=256, target_ee=target, n_lo=1e4, n_hi=1e12
        )
        assert ft_model.ee(n=n, p=256) == pytest.approx(target, abs=1e-4)

    def test_required_n_grows_with_p(self, ft_model):
        n64 = iso_workload(ft_model, p=64, target_ee=0.70, n_lo=1e3, n_hi=1e12)
        n256 = iso_workload(ft_model, p=256, target_ee=0.70, n_lo=1e3, n_hi=1e12)
        assert n256 > n64

    def test_saturation_is_detected(self, ft_model):
        # asking for more EE than the n→∞ plateau allows must refuse
        with pytest.raises(ParameterError, match="does not cross"):
            iso_workload(ft_model, p=256, target_ee=0.9, n_lo=1e5, n_hi=1e12)

    def test_ep_cannot_be_rescued_by_n(self, ep_model):
        # §V-B-6: EP's EE is flat in n — no bracketing, so the solver
        # must refuse rather than fabricate an answer.
        with pytest.raises(ParameterError, match="does not cross"):
            iso_workload(ep_model, p=64, target_ee=0.99, n_lo=1e6, n_hi=1e12)

    def test_invalid_target_rejected(self, ft_model):
        with pytest.raises(ParameterError):
            iso_workload(ft_model, p=8, target_ee=1.5, n_lo=1e4, n_hi=1e8)

    def test_invalid_interval_rejected(self, ft_model):
        with pytest.raises(ParameterError):
            iso_workload(ft_model, p=8, target_ee=0.9, n_lo=1e8, n_hi=1e4)


def test_iso_contour_is_monotone(ft_model):
    contour = iso_contour(
        ft_model, p_values=[64, 128, 256], target_ee=0.70, n_lo=1e3, n_hi=1e12
    )
    sizes = [n for _, n in contour]
    assert sizes == sorted(sizes)


class TestFrequencyTuning:
    FREQS = tuple(f * GHZ for f in (1.6, 2.0, 2.4, 2.8))

    def test_best_frequency_returns_max(self, ft_model):
        f, ee = frequency_for_best_ee(
            ft_model, n=2**22, p=64, frequencies=self.FREQS
        )
        assert f in self.FREQS
        for other in self.FREQS:
            assert ee >= ft_model.ee(n=2**22, p=64, f=other) - 1e-12

    def test_sensitivity_nonnegative(self, ft_model):
        s = ee_frequency_sensitivity(
            ft_model, n=2**22, p=64, frequencies=self.FREQS
        )
        assert s >= 0.0

    def test_ep_insensitive_to_frequency(self, ep_model):
        s = ee_frequency_sensitivity(
            ep_model, n=2**30, p=64, frequencies=self.FREQS
        )
        assert s < 0.005  # the paper's "EE hardly changes with p and f"

    def test_empty_frequencies_rejected(self, ft_model):
        with pytest.raises(ParameterError):
            frequency_for_best_ee(ft_model, n=1e6, p=8, frequencies=[])


class TestMaxParallelism:
    def test_ep_scales_past_ft(self, ep_model, ft_model):
        p_ep = max_parallelism(ep_model, n=2**30, min_ee=0.95, p_limit=4096)
        p_ft = max_parallelism(ft_model, n=2**22, min_ee=0.95, p_limit=4096)
        assert p_ep > p_ft

    def test_bound_respected(self, ft_model):
        p_max = max_parallelism(ft_model, n=2**22, min_ee=0.9, p_limit=2048)
        assert ft_model.ee(n=2**22, p=p_max) >= 0.9
        if p_max < 2048:
            assert ft_model.ee(n=2**22, p=2 * p_max) < 0.9

    def test_invalid_bound_rejected(self, ft_model):
        with pytest.raises(ParameterError):
            max_parallelism(ft_model, n=1e6, min_ee=0.0)

"""Performance model: Eqs. (5), (6), (10), (17)."""

import pytest

from repro.core.parameters import AppParams
from repro.core.performance import (
    comm_time,
    overlap_alpha,
    parallel_time,
    sequential_time,
    speedup,
    total_parallel_time,
)
from repro.errors import ParameterError


def test_sequential_time_eq6(machine, seq_app):
    expected = seq_app.alpha * (
        seq_app.wc * machine.tc + seq_app.wm * machine.tm
    )
    assert sequential_time(machine, seq_app) == pytest.approx(expected)


def test_sequential_time_ignores_parallel_overheads(machine, app):
    # T1 must use the sequential view even when handed a parallel Θ2
    seq_only = sequential_time(machine, app.sequential())
    assert sequential_time(machine, app) == pytest.approx(seq_only)


def test_comm_time_eq17(machine, app):
    expected = app.m_messages * machine.ts + app.b_bytes * machine.tw
    assert comm_time(machine, app) == pytest.approx(expected)


def test_total_parallel_time_eq15_inner(machine, app):
    expected = app.alpha * (
        (app.wc + app.wco) * machine.tc
        + (app.wm + app.wmo) * machine.tm
        + comm_time(machine, app)
    )
    assert total_parallel_time(machine, app, 16) == pytest.approx(expected)


def test_parallel_time_divides_by_p(machine, app):
    assert parallel_time(machine, app, 16) == pytest.approx(
        total_parallel_time(machine, app, 16) / 16
    )


def test_p1_parallel_time_equals_sequential(machine, seq_app):
    assert parallel_time(machine, seq_app, 1) == pytest.approx(
        sequential_time(machine, seq_app)
    )


def test_speedup_below_ideal_with_overheads(machine, app):
    s = speedup(machine, app, 16)
    assert 1.0 < s < 16.0


def test_speedup_ideal_without_overheads(machine):
    clean = AppParams(alpha=0.9, wc=1e10, wm=2e8, p=16)
    assert speedup(machine, clean, 16) == pytest.approx(16.0)


def test_io_time_enters_sequential(machine):
    with_io = AppParams(alpha=0.9, wc=1e10, wm=0.0, t_io=5.0, p=1)
    without = AppParams(alpha=0.9, wc=1e10, wm=0.0, p=1)
    delta = sequential_time(machine, with_io) - sequential_time(machine, without)
    assert delta == pytest.approx(0.9 * 5.0)


def test_invalid_p_rejected(machine, app):
    with pytest.raises(ParameterError):
        parallel_time(machine, app, 0)
    with pytest.raises(ParameterError):
        speedup(machine, app, -1)


class TestOverlapAlpha:
    def test_perfect_overlap_measurement(self):
        assert overlap_alpha(
            measured_time=8.0, compute_time=5.0, memory_time=5.0
        ) == pytest.approx(0.8)

    def test_no_overlap_gives_one(self):
        assert overlap_alpha(10.0, 4.0, 6.0) == pytest.approx(1.0)

    def test_measured_above_theoretical_rejected(self):
        with pytest.raises(ParameterError, match="exceeds theoretical"):
            overlap_alpha(11.0, 4.0, 6.0)

    def test_includes_network_and_io(self):
        alpha = overlap_alpha(
            measured_time=9.0,
            compute_time=4.0,
            memory_time=3.0,
            network_time=2.0,
            io_time=1.0,
        )
        assert alpha == pytest.approx(0.9)

    def test_zero_theoretical_rejected(self):
        with pytest.raises(ParameterError):
            overlap_alpha(1.0, 0.0, 0.0)

"""Heterogeneous-system extension."""

import dataclasses

import pytest

from repro.core.hetero import HeteroIsoEnergyModel, ProcessorGroup
from repro.core.parameters import AppParams
from repro.errors import ParameterError


@pytest.fixture()
def fast_machine(machine):
    return machine


@pytest.fixture()
def slow_machine(machine):
    # half the clock: twice the instruction time, quarter the ΔPc (γ=2)
    return machine.at_frequency(machine.f / 2)


@pytest.fixture()
def hetero(fast_machine, slow_machine):
    return HeteroIsoEnergyModel(
        [
            ProcessorGroup(name="fast", machine=fast_machine, count=4),
            ProcessorGroup(name="slow", machine=slow_machine, count=4),
        ]
    )


@pytest.fixture()
def app():
    return AppParams(
        alpha=0.9, wc=1e10, wm=2e8, wco=5e7, wmo=1e6,
        m_messages=1e3, b_bytes=1e8, p=8,
    )


def test_group_validation(fast_machine):
    with pytest.raises(ParameterError):
        ProcessorGroup(name="x", machine=fast_machine, count=0)
    with pytest.raises(ParameterError):
        HeteroIsoEnergyModel([])
    with pytest.raises(ParameterError):
        HeteroIsoEnergyModel(
            [
                ProcessorGroup(name="a", machine=fast_machine, count=1),
                ProcessorGroup(name="a", machine=fast_machine, count=1),
            ]
        )


def test_total_processors(hetero):
    assert hetero.total_processors == 8


def test_balanced_split_favors_fast_group(hetero, app):
    shares = hetero.split_shares(app, policy="balanced")
    assert shares["fast"] > shares["slow"]
    assert sum(shares.values()) == pytest.approx(1.0)


def test_uniform_split_ignores_speed(hetero, app):
    shares = hetero.split_shares(app, policy="uniform")
    assert shares["fast"] == pytest.approx(0.5)


def test_unknown_policy_rejected(hetero, app):
    with pytest.raises(ParameterError):
        hetero.split_shares(app, policy="random")


def test_balanced_faster_than_uniform(hetero, app):
    balanced = hetero.evaluate(app, policy="balanced")
    uniform = hetero.evaluate(app, policy="uniform")
    assert balanced.tp <= uniform.tp


def test_policy_gap_positive(hetero, app):
    assert hetero.policy_gap(app) > 0.0


def test_homogeneous_special_case_matches_core_model(fast_machine, app):
    """One group of identical processors must reproduce the core model."""
    from repro.core.energy import parallel_energy
    from repro.core.performance import parallel_time

    homo = HeteroIsoEnergyModel(
        [ProcessorGroup(name="only", machine=fast_machine, count=8)]
    )
    point = homo.evaluate(app)
    assert point.tp == pytest.approx(parallel_time(fast_machine, app, 8))
    assert point.ep == pytest.approx(parallel_energy(fast_machine, app, 8))


def test_ee_bounded(hetero, app):
    point = hetero.evaluate(app)
    assert 0.0 < point.ee <= 1.0


def test_e1_anchor_is_best_single_processor(hetero, app, fast_machine, slow_machine):
    from repro.core.energy import sequential_energy

    e1 = hetero.best_sequential_energy(app)
    candidates = [
        sequential_energy(fast_machine, app),
        sequential_energy(slow_machine, app),
    ]
    assert e1 == pytest.approx(min(candidates))


def test_straggler_idle_tail_charged(fast_machine, slow_machine, app):
    """Uniform split on unequal groups must cost straggler idle energy."""
    hetero = HeteroIsoEnergyModel(
        [
            ProcessorGroup(name="fast", machine=fast_machine, count=4),
            ProcessorGroup(name="slow", machine=slow_machine, count=4),
        ]
    )
    uniform = hetero.evaluate(app, policy="uniform")
    assert sum(uniform.group_energies.values()) < uniform.ep


def test_adding_slow_processors_can_hurt_ee(fast_machine, slow_machine, app):
    """The hetero headline: more (slow) silicon is not automatically greener."""
    fast_only = HeteroIsoEnergyModel(
        [ProcessorGroup(name="fast", machine=fast_machine, count=4)]
    )
    mixed_uniform = HeteroIsoEnergyModel(
        [
            ProcessorGroup(name="fast", machine=fast_machine, count=4),
            ProcessorGroup(name="slow", machine=slow_machine, count=4),
        ]
    )
    ee_fast = fast_only.evaluate(app).ee
    ee_mixed = mixed_uniform.evaluate(app, policy="uniform").ee
    assert ee_mixed < ee_fast

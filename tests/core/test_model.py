"""The IsoEnergyModel facade."""

import pytest

from repro.core.model import IsoEnergyModel
from repro.core.parameters import AppParams
from repro.errors import ParameterError
from repro.npb.ft import FtWorkload
from repro.units import GHZ


@pytest.fixture()
def model(machine) -> IsoEnergyModel:
    return IsoEnergyModel(machine, FtWorkload(niter=5), name="FT-test")


def test_evaluate_consistency(model):
    pt = model.evaluate(n=2**20, p=8)
    assert pt.ee == pytest.approx(1.0 / (1.0 + pt.eef))
    assert pt.ee == pytest.approx(pt.e1 / pt.ep)
    assert pt.speedup == pytest.approx(pt.t1 / pt.tp)
    assert pt.perf_efficiency == pytest.approx(pt.speedup / pt.p)


def test_p1_is_ideal(model):
    pt = model.evaluate(n=2**20, p=1)
    assert pt.ee == pytest.approx(1.0)
    assert pt.bottleneck == "none"


def test_machine_at_rescales(model, machine):
    m2 = model.machine_at(1.4 * GHZ)
    assert m2.f == pytest.approx(1.4 * GHZ)
    assert model.machine_at(None) is machine


def test_callable_workload_accepted(machine):
    fn = lambda n, p: AppParams(alpha=0.9, wc=n, wm=0.0, p=p)  # noqa: E731
    model = IsoEnergyModel(machine, fn)
    assert model.ee(n=1e9, p=4) == pytest.approx(1.0)


def test_predict_energy_matches_evaluate(model):
    n = 2**20
    assert model.predict_energy(n=n, p=8) == pytest.approx(
        model.evaluate(n=n, p=8).ep
    )


def test_sweep_cartesian_product(model):
    points = model.sweep(n_values=[2**18, 2**20], p_values=[1, 4, 16])
    assert len(points) == 6
    assert {(pt.n, pt.p) for pt in points} == {
        (n, p) for n in (2**18, 2**20) for p in (1, 4, 16)
    }


def test_sweep_full_three_axis_product(model, machine):
    points = model.sweep(
        n_values=[2**18, 2**20],
        p_values=[2, 8],
        f_values=[1.6e9, machine.f],
    )
    assert len(points) == 8
    assert {(pt.n, pt.p, pt.f) for pt in points} == {
        (n, p, f)
        for n in (2**18, 2**20)
        for p in (2, 8)
        for f in (1.6e9, machine.f)
    }


def test_sweep_mixed_fixed_and_swept(model):
    """Fixed scalars combine with swept axes in the cartesian product."""
    points = model.sweep(n=2**20, p_values=[1, 2, 4])
    assert [pt.p for pt in points] == [1, 2, 4]
    assert all(pt.n == 2**20 for pt in points)

    points = model.sweep(n_values=[2**18, 2**20], p=8)
    assert [pt.n for pt in points] == [2**18, 2**20]
    assert all(pt.p == 8 for pt in points)


def test_sweep_all_fixed_is_single_point(model):
    points = model.sweep(n=2**20, p=4)
    assert len(points) == 1
    assert (points[0].n, points[0].p) == (2**20, 4)


def test_sweep_f_defaults_to_calibration_frequency(model, machine):
    (pt,) = model.sweep(n=2**20, p=4)
    assert pt.f == machine.f


def test_sweep_requires_axes(model):
    with pytest.raises(ParameterError):
        model.sweep(p_values=[1, 2])  # n missing
    with pytest.raises(ParameterError):
        model.sweep(n_values=[1e6])  # p missing
    with pytest.raises(ParameterError):
        model.sweep()  # everything missing
    with pytest.raises(ParameterError):
        model.sweep(f_values=[1.6e9, 2.8e9])  # f alone fixes neither n nor p


def test_sweep_swept_axis_wins_over_fixed_value(model):
    """Supplying both the scalar and the sequence uses the sequence."""
    points = model.sweep(n=2**10, n_values=[2**18, 2**20], p=4)
    assert [pt.n for pt in points] == [2**18, 2**20]


def test_theta2_table_shape_and_values(model):
    table = model.theta2_table([2**18, 2**20], [1, 4, 16])
    assert table["wc"].shape == (2, 3)
    app = model.app_params(float(2**20), 16)
    assert table["wmo"][1, 2] == app.wmo


def test_theta2_table_validation(model):
    with pytest.raises(ParameterError):
        model.theta2_table([], [1, 2])
    with pytest.raises(ParameterError):
        model.theta2_table([2**18], [])
    with pytest.raises(ParameterError):
        model.theta2_table([2**18], [0])


def test_degenerate_tp_guarded(model, monkeypatch):
    """A workload collapsing to Tp == 0 raises instead of dividing by 0."""
    import repro.core.model as model_mod

    monkeypatch.setattr(model_mod, "parallel_time", lambda m, a, p: 0.0)
    with pytest.raises(ParameterError, match="Tp=0"):
        model.evaluate(n=2**20, p=8)


def test_degenerate_eef_guarded(model, monkeypatch):
    """EEF == -1 (Ep == 0) raises instead of evaluating EE = 1/0."""
    import repro.core.model as model_mod

    monkeypatch.setattr(model_mod, "eef", lambda m, a, p: -1.0)
    with pytest.raises(ParameterError, match="EEF=-1"):
        model.evaluate(n=2**20, p=8)


def test_machine_at_is_memoised(model):
    assert model.machine_at(1.4 * GHZ) is model.machine_at(1.4 * GHZ)
    hits_before = model.cache_info()["machine_at"].hits
    model.machine_at(1.4 * GHZ)
    assert model.cache_info()["machine_at"].hits == hits_before + 1


def test_app_params_is_memoised(model):
    assert model.app_params(2**20, 8) is model.app_params(2**20, 8)
    assert model.cache_info()["app_params"].hits >= 1


def test_cache_theta2_opt_out_consults_workload_each_time(machine):
    """Stateful workloads (e.g. noise-injecting calibration models) need
    every evaluation to hit the workload afresh."""
    calls = []

    def noisy(n, p):
        calls.append((n, p))
        return AppParams(alpha=0.9, wc=n * (1 + 1e-6 * len(calls)), p=None)

    model = IsoEnergyModel(machine, noisy, cache_theta2=False)
    a = model.app_params(1e9, 4)
    b = model.app_params(1e9, 4)
    assert len(calls) == 2
    assert a.wc != b.wc
    assert model.cache_info()["app_params"] is None


def test_as_dict_round(model):
    d = model.evaluate(n=2**20, p=8).as_dict()
    assert d["p"] == 8
    assert 0 < d["ee"] <= 1


def test_invalid_p(model):
    with pytest.raises(ParameterError):
        model.evaluate(n=2**20, p=0)

"""The IsoEnergyModel facade."""

import pytest

from repro.core.model import IsoEnergyModel
from repro.core.parameters import AppParams
from repro.errors import ParameterError
from repro.npb.ft import FtWorkload
from repro.units import GHZ


@pytest.fixture()
def model(machine) -> IsoEnergyModel:
    return IsoEnergyModel(machine, FtWorkload(niter=5), name="FT-test")


def test_evaluate_consistency(model):
    pt = model.evaluate(n=2**20, p=8)
    assert pt.ee == pytest.approx(1.0 / (1.0 + pt.eef))
    assert pt.ee == pytest.approx(pt.e1 / pt.ep)
    assert pt.speedup == pytest.approx(pt.t1 / pt.tp)
    assert pt.perf_efficiency == pytest.approx(pt.speedup / pt.p)


def test_p1_is_ideal(model):
    pt = model.evaluate(n=2**20, p=1)
    assert pt.ee == pytest.approx(1.0)
    assert pt.bottleneck == "none"


def test_machine_at_rescales(model, machine):
    m2 = model.machine_at(1.4 * GHZ)
    assert m2.f == pytest.approx(1.4 * GHZ)
    assert model.machine_at(None) is machine


def test_callable_workload_accepted(machine):
    fn = lambda n, p: AppParams(alpha=0.9, wc=n, wm=0.0, p=p)  # noqa: E731
    model = IsoEnergyModel(machine, fn)
    assert model.ee(n=1e9, p=4) == pytest.approx(1.0)


def test_predict_energy_matches_evaluate(model):
    n = 2**20
    assert model.predict_energy(n=n, p=8) == pytest.approx(
        model.evaluate(n=n, p=8).ep
    )


def test_sweep_cartesian_product(model):
    points = model.sweep(n_values=[2**18, 2**20], p_values=[1, 4, 16])
    assert len(points) == 6
    assert {(pt.n, pt.p) for pt in points} == {
        (n, p) for n in (2**18, 2**20) for p in (1, 4, 16)
    }


def test_sweep_requires_axes(model):
    with pytest.raises(ParameterError):
        model.sweep(p_values=[1, 2])  # n missing
    with pytest.raises(ParameterError):
        model.sweep(n_values=[1e6])  # p missing


def test_as_dict_round(model):
    d = model.evaluate(n=2**20, p=8).as_dict()
    assert d["p"] == 8
    assert 0 < d["ee"] <= 1


def test_invalid_p(model):
    with pytest.raises(ParameterError):
        model.evaluate(n=2**20, p=0)

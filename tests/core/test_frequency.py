"""Frequency laws: tc = CPI/f and ΔP ∝ f^γ (Eq. 20)."""

import pytest

from repro.core.frequency import (
    dynamic_power,
    energy_per_instruction,
    race_to_idle_break_even_gamma,
    tc_from_cpi,
)
from repro.errors import ParameterError
from repro.units import GHZ


def test_tc_from_cpi():
    assert tc_from_cpi(1.0, 2.0 * GHZ) == pytest.approx(0.5e-9)


def test_tc_rejects_bad_inputs():
    with pytest.raises(ParameterError):
        tc_from_cpi(0.0, 1 * GHZ)
    with pytest.raises(ParameterError):
        tc_from_cpi(1.0, 0.0)


def test_dynamic_power_reference_point():
    assert dynamic_power(100.0, 2 * GHZ, 2 * GHZ, 2.0) == pytest.approx(100.0)


@pytest.mark.parametrize("gamma,expected", [(1.0, 50.0), (2.0, 25.0), (3.0, 12.5)])
def test_dynamic_power_exponents(gamma, expected):
    assert dynamic_power(100.0, 1 * GHZ, 2 * GHZ, gamma) == pytest.approx(expected)


def test_dynamic_power_rejects_gamma_below_one():
    with pytest.raises(ParameterError):
        dynamic_power(100.0, 1 * GHZ, 2 * GHZ, 0.9)


def test_energy_per_instruction_gamma2_linear_in_f():
    """For γ=2, tc·ΔP ∝ f — active energy per instruction grows with f."""
    e1 = energy_per_instruction(1.0, 1 * GHZ, 100.0, 2 * GHZ, 2.0)
    e2 = energy_per_instruction(1.0, 2 * GHZ, 100.0, 2 * GHZ, 2.0)
    assert e2 / e1 == pytest.approx(2.0)


def test_energy_per_instruction_gamma1_frequency_neutral():
    """γ=1 is the break-even: tc·ΔP is constant in f."""
    e1 = energy_per_instruction(1.0, 1 * GHZ, 100.0, 2 * GHZ, 1.0)
    e2 = energy_per_instruction(1.0, 2 * GHZ, 100.0, 2 * GHZ, 1.0)
    assert e1 == pytest.approx(e2)
    assert race_to_idle_break_even_gamma() == 1.0

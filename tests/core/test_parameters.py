"""Θ1/Θ2 dataclasses: validation and DVFS projection."""

import pytest

from repro.core.parameters import AppParams, MachineParams
from repro.errors import ParameterError
from repro.units import GHZ


class TestMachineParams:
    def test_p_system_idle_sums(self, machine):
        assert machine.p_system_idle == pytest.approx(15 + 6 + 4 + 30)

    def test_tc_consistency_enforced(self, machine):
        with pytest.raises(ParameterError, match="tc = CPI/f"):
            MachineParams(
                tc=1e-9,  # inconsistent with cpi/f
                tm=machine.tm,
                ts=machine.ts,
                tw=machine.tw,
                delta_pc=1,
                delta_pm=1,
                pc_idle=1,
                pm_idle=1,
                p_others=1,
                f=2.8 * GHZ,
                cpi=0.781,
            )

    def test_at_frequency_rescales_tc(self, machine):
        m2 = machine.at_frequency(1.4 * GHZ)
        assert m2.tc == pytest.approx(0.781 / (1.4 * GHZ))
        assert m2.f == pytest.approx(1.4 * GHZ)

    def test_at_frequency_applies_power_law(self, machine):
        m2 = machine.at_frequency(1.4 * GHZ)
        assert m2.delta_pc == pytest.approx(machine.delta_pc * 0.25)

    def test_at_frequency_keeps_network_and_memory(self, machine):
        m2 = machine.at_frequency(1.4 * GHZ)
        assert m2.tm == machine.tm
        assert m2.ts == machine.ts
        assert m2.tw == machine.tw
        assert m2.delta_pm == machine.delta_pm

    def test_at_frequency_roundtrip(self, machine):
        back = machine.at_frequency(1.4 * GHZ).at_frequency(2.8 * GHZ)
        assert back.tc == pytest.approx(machine.tc)
        assert back.delta_pc == pytest.approx(machine.delta_pc)

    def test_at_frequency_without_cpi_derives_it(self, machine):
        no_cpi = MachineParams(
            tc=machine.tc,
            tm=machine.tm,
            ts=machine.ts,
            tw=machine.tw,
            delta_pc=machine.delta_pc,
            delta_pm=machine.delta_pm,
            pc_idle=machine.pc_idle,
            pm_idle=machine.pm_idle,
            p_others=machine.p_others,
            f=machine.f,
        )
        m2 = no_cpi.at_frequency(1.4 * GHZ)
        assert m2.tc == pytest.approx(machine.tc * 2.0)

    def test_scaled_network(self, machine):
        m2 = machine.scaled_network(2.0)
        assert m2.tw == pytest.approx(machine.tw / 2.0)
        assert m2.ts == machine.ts

    def test_gamma_below_one_rejected(self, machine):
        with pytest.raises(ParameterError, match="gamma"):
            MachineParams(
                tc=machine.tc,
                tm=machine.tm,
                ts=machine.ts,
                tw=machine.tw,
                delta_pc=1,
                delta_pm=1,
                pc_idle=1,
                pm_idle=1,
                p_others=1,
                f=machine.f,
                gamma=0.5,
            )

    @pytest.mark.parametrize("field", ["tc", "tm", "ts", "tw"])
    def test_nonpositive_times_rejected(self, machine, field):
        kwargs = dict(
            tc=machine.tc,
            tm=machine.tm,
            ts=machine.ts,
            tw=machine.tw,
            delta_pc=1,
            delta_pm=1,
            pc_idle=1,
            pm_idle=1,
            p_others=1,
            f=machine.f,
        )
        kwargs[field] = 0.0
        with pytest.raises(ParameterError):
            MachineParams(**kwargs)


class TestAppParams:
    def test_alpha_bounds(self):
        with pytest.raises(ParameterError, match="alpha"):
            AppParams(alpha=0.0, wc=1.0)
        with pytest.raises(ParameterError, match="alpha"):
            AppParams(alpha=1.2, wc=1.0)
        AppParams(alpha=1.0, wc=1.0)  # boundary allowed

    def test_sequential_cannot_have_overheads(self):
        with pytest.raises(ParameterError, match="p=1"):
            AppParams(alpha=0.9, wc=1.0, wco=1.0, p=1)

    def test_totals(self, app):
        assert app.total_instructions == pytest.approx(app.wc + app.wco)
        assert app.total_mem_accesses == pytest.approx(app.wm + app.wmo)

    def test_sequential_view_strips_overheads(self, app):
        seq = app.sequential()
        assert seq.p == 1
        assert seq.wco == 0.0
        assert seq.m_messages == 0.0
        assert seq.wc == app.wc

    def test_negative_overheads_rejected(self):
        with pytest.raises(ParameterError):
            AppParams(alpha=0.9, wc=1.0, wmo=-1.0)

    def test_zero_compute_rejected(self):
        with pytest.raises(ParameterError):
            AppParams(alpha=0.9, wc=0.0)

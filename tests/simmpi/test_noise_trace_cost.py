"""Noise model, tracer, and cost model units."""

import numpy as np
import pytest

from repro.cluster.network import infiniband_qdr
from repro.errors import ConfigurationError
from repro.simmpi.costmodel import CostModel
from repro.simmpi.noise import NoiseModel
from repro.simmpi.trace import CommTrace


class TestNoiseModel:
    def test_quiet_is_identity(self):
        nm = NoiseModel.quiet()
        assert nm.compute_factor() == 1.0
        assert nm.memory_factor() == 1.0
        assert nm.network_factor() == 1.0
        assert nm.os_preemption(100.0) == 0.0
        assert nm.node_cpu_factor(3) == 1.0

    def test_node_factor_stable_per_node(self):
        nm = NoiseModel(seed=1)
        assert nm.node_cpu_factor(5) == nm.node_cpu_factor(5)
        assert nm.node_cpu_factor(5) != nm.node_cpu_factor(6)

    def test_node_factor_deterministic_across_instances(self):
        assert NoiseModel(seed=7).node_cpu_factor(2) == NoiseModel(
            seed=7
        ).node_cpu_factor(2)

    def test_factors_near_one(self):
        nm = NoiseModel(seed=3, cpu_sigma=0.02)
        samples = [nm.compute_factor() for _ in range(2000)]
        assert abs(np.mean(samples) - 1.0) < 0.01

    def test_mem_pattern_bias_systematic(self):
        nm = NoiseModel(seed=0, mem_sigma=0.0, mem_pattern_bias=1.08)
        assert nm.memory_factor() == pytest.approx(1.08)

    def test_os_preemption_scales_with_busy_time(self):
        nm = NoiseModel(seed=0, os_noise_rate=10.0, os_noise_duration=0.01)
        long = sum(nm.os_preemption(100.0) for _ in range(10))
        short = sum(nm.os_preemption(0.1) for _ in range(10))
        assert long > short

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            NoiseModel(cpu_sigma=-0.1)
        with pytest.raises(ConfigurationError):
            NoiseModel(mem_pattern_bias=0.0)


class TestCostModel:
    def test_basic_hockney(self):
        cm = CostModel(interconnect=infiniband_qdr())
        net = infiniband_qdr()
        assert cm.transfer_time(1000) == pytest.approx(net.ts + 1000 * net.tw)

    def test_intra_node_discount(self):
        cm = CostModel(interconnect=infiniband_qdr())
        assert cm.transfer_time(1 << 20, same_node=True) < cm.transfer_time(1 << 20)

    def test_congestion_penalty(self):
        cm = CostModel(interconnect=infiniband_qdr(), congestion_beta=0.1)
        free = cm.transfer_time(1000, concurrent=0)
        busy = cm.transfer_time(1000, concurrent=10)
        assert busy == pytest.approx(free * 2.0)

    def test_negative_size_rejected(self):
        cm = CostModel(interconnect=infiniband_qdr())
        with pytest.raises(ConfigurationError):
            cm.transfer_time(-1)

    def test_invalid_factors_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel(interconnect=infiniband_qdr(), intra_node_ts_factor=0.0)
        with pytest.raises(ConfigurationError):
            CostModel(interconnect=infiniband_qdr(), congestion_beta=-1.0)


class TestCommTrace:
    def test_record_accumulates(self):
        tr = CommTrace()
        tr.record_transfer(0, 1, 100, 1e-6, same_node=False, phase="a")
        tr.record_transfer(1, 0, 200, 2e-6, same_node=True, phase="a")
        assert tr.m_total == 2
        assert tr.b_total == 300
        assert tr.intra_node_messages == 1
        assert tr.comm_seconds == pytest.approx(3e-6)

    def test_per_rank_accounting(self):
        tr = CommTrace()
        tr.record_transfer(0, 1, 100, 1e-6, same_node=False)
        tr.record_transfer(0, 2, 50, 1e-6, same_node=False)
        assert tr.per_rank_sent[0] == 2
        assert tr.per_rank_bytes[0] == 150

    def test_phase_summary_sorted_by_volume(self):
        tr = CommTrace()
        tr.record_transfer(0, 1, 10, 1e-6, same_node=False, phase="small")
        tr.record_transfer(0, 1, 1000, 1e-6, same_node=False, phase="big")
        summary = tr.phase_summary()
        assert summary[0][0] == "big"
        assert summary[1] == ("small", 1, 10)

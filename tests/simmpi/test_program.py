"""Rank-program API: context validation and operation construction."""

import pytest

from repro.errors import RankError
from repro.simmpi.program import (
    CommOp,
    ComputeOp,
    RankContext,
    RecvPost,
    Segment,
    SendPost,
)


@pytest.fixture()
def ctx():
    return RankContext(rank=1, size=4)


class TestContextConstruction:
    def test_rank_bounds(self):
        with pytest.raises(RankError):
            RankContext(rank=4, size=4)
        with pytest.raises(RankError):
            RankContext(rank=-1, size=4)
        with pytest.raises(RankError):
            RankContext(rank=0, size=0)

    def test_single_rank_world(self):
        ctx = RankContext(rank=0, size=1)
        assert ctx.size == 1


class TestComputeOps:
    def test_compute_yields_op(self, ctx):
        ops = list(ctx.compute(instructions=10.0, mem_accesses=2.0, label="x"))
        assert len(ops) == 1
        assert isinstance(ops[0], ComputeOp)
        assert ops[0].instructions == 10.0
        assert ops[0].label == "x"

    def test_zero_compute_is_noop(self, ctx):
        assert list(ctx.compute(0.0, 0.0)) == []

    def test_negative_work_rejected(self, ctx):
        with pytest.raises(RankError):
            list(ctx.compute(-1.0))

    def test_zero_io_and_sleep_are_noops(self, ctx):
        assert list(ctx.io(0.0)) == []
        assert list(ctx.sleep(0.0)) == []

    def test_negative_durations_rejected(self, ctx):
        with pytest.raises(RankError):
            list(ctx.io(-0.1))
        with pytest.raises(RankError):
            list(ctx.sleep(-0.1))


class TestCommOps:
    def test_send_builds_post(self, ctx):
        (op,) = list(ctx.send(dst=2, nbytes=100, tag=7))
        assert isinstance(op, CommOp)
        assert op.posts == (SendPost(dst=2, nbytes=100, tag=7),)

    def test_recv_builds_post(self, ctx):
        (op,) = list(ctx.recv(src=0, tag=3))
        assert op.posts == (RecvPost(src=0, tag=3),)

    def test_exchange_posts_both(self, ctx):
        (op,) = list(ctx.exchange(dst=2, src=0, nbytes=64))
        kinds = {type(p) for p in op.posts}
        assert kinds == {SendPost, RecvPost}

    def test_self_messaging_rejected(self, ctx):
        with pytest.raises(RankError, match="self-messaging"):
            list(ctx.send(dst=1, nbytes=1))
        with pytest.raises(RankError):
            list(ctx.exchange(dst=1, src=0, nbytes=1))

    def test_peer_out_of_range_rejected(self, ctx):
        with pytest.raises(RankError):
            list(ctx.send(dst=4, nbytes=1))
        with pytest.raises(RankError):
            list(ctx.recv(src=-1))

    def test_negative_size_rejected(self, ctx):
        with pytest.raises(RankError):
            list(ctx.send(dst=2, nbytes=-1))

    def test_post_validates_each_entry(self, ctx):
        with pytest.raises(RankError):
            list(ctx.post([SendPost(dst=9, nbytes=1, tag=0)]))
        assert list(ctx.post([])) == []

    def test_post_accepts_mixed_sets(self, ctx):
        posts = [
            SendPost(dst=2, nbytes=10, tag=1),
            SendPost(dst=3, nbytes=20, tag=1),
            RecvPost(src=0, tag=1),
        ]
        (op,) = list(ctx.post(posts, label="fan"))
        assert len(op.posts) == 3
        assert op.label == "fan"


class TestSegment:
    def test_duration(self):
        s = Segment(rank=0, node=0, t0=1.0, t1=3.5, kind="work")
        assert s.duration == pytest.approx(2.5)

    def test_backwards_segment_rejected(self):
        with pytest.raises(RankError):
            Segment(rank=0, node=0, t0=2.0, t1=1.0, kind="work")

    def test_counters_default_zero(self):
        s = Segment(rank=0, node=0, t0=0.0, t1=1.0, kind="comm")
        assert s.instructions == 0.0
        assert s.mem_ops == 0.0

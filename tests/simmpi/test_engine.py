"""Discrete-event engine: timing semantics, matching, deadlock detection."""

import pytest

from repro.errors import ConfigurationError, DeadlockError, RankError
from repro.simmpi.engine import SimConfig, SimEngine
from repro.simmpi.noise import NoiseModel


@pytest.fixture()
def engine(systemg8):
    return SimEngine(systemg8, SimConfig())


def test_compute_duration_exact(systemg8):
    engine = SimEngine(systemg8, SimConfig(alpha=1.0))

    def prog(ctx):
        yield from ctx.compute(instructions=1e6, mem_accesses=1e3)

    res = engine.run(prog, size=1)
    node = systemg8.nodes[0]
    expected = 1e6 * node.cpu.tc() + 1e3 * node.memory.tm
    assert res.total_time == pytest.approx(expected)


def test_alpha_shrinks_wall_time(systemg8):
    def prog(ctx):
        yield from ctx.compute(instructions=1e6, mem_accesses=1e3)

    t_full = SimEngine(systemg8, SimConfig(alpha=1.0)).run(prog, 1).total_time
    t_overlap = SimEngine(systemg8, SimConfig(alpha=0.8)).run(prog, 1).total_time
    assert t_overlap == pytest.approx(0.8 * t_full)


def test_alpha_preserves_active_seconds(systemg8):
    """Overlap shortens the wall clock but not the active energy basis."""

    def prog(ctx):
        yield from ctx.compute(instructions=1e6, mem_accesses=1e3)

    res = SimEngine(systemg8, SimConfig(alpha=0.8)).run(prog, 1)
    seg = [s for s in res.segments if s.kind == "work"][0]
    node = systemg8.nodes[0]
    assert seg.cpu_active == pytest.approx(1e6 * node.cpu.tc())
    assert seg.mem_active == pytest.approx(1e3 * node.memory.tm)
    assert seg.cpu_active + seg.mem_active > seg.duration


def test_cpi_factor_scales_compute(systemg8):
    def prog(ctx):
        yield from ctx.compute(instructions=1e6)

    base = SimEngine(systemg8, SimConfig()).run(prog, 1).total_time
    stalled = SimEngine(systemg8, SimConfig(cpi_factor=2.5)).run(prog, 1).total_time
    assert stalled == pytest.approx(2.5 * base)


def test_send_recv_transfer_time(systemg8):
    engine = SimEngine(systemg8, SimConfig())

    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.send(dst=1, nbytes=1 << 20)
        else:
            yield from ctx.recv(src=0)

    res = engine.run(prog, size=2)
    net = systemg8.interconnect
    assert res.total_time == pytest.approx(net.ts + (1 << 20) * net.tw)
    assert res.trace.m_total == 1
    assert res.trace.b_total == 1 << 20


def test_transfer_starts_when_both_ready(systemg8):
    """A transfer begins at max(sender ready, receiver ready)."""
    engine = SimEngine(systemg8, SimConfig())

    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.send(dst=1, nbytes=0)
        else:
            yield from ctx.sleep(1.0)  # receiver arrives late
            yield from ctx.recv(src=0)

    res = engine.run(prog, size=2)
    assert res.total_time == pytest.approx(1.0 + systemg8.interconnect.ts)
    # the sender's comm segment includes its wait for the receiver
    comm0 = [s for s in res.segments if s.rank == 0 and s.kind == "comm"][0]
    assert comm0.duration == pytest.approx(1.0 + systemg8.interconnect.ts)


def test_exchange_is_full_duplex(systemg8):
    engine = SimEngine(systemg8, SimConfig())

    def prog(ctx):
        peer = 1 - ctx.rank
        yield from ctx.exchange(dst=peer, src=peer, nbytes=1 << 16)

    res = engine.run(prog, size=2)
    net = systemg8.interconnect
    # both directions overlap: one transfer time, not two
    assert res.total_time == pytest.approx(net.ts + (1 << 16) * net.tw)
    assert res.trace.m_total == 2  # but both messages are counted


def test_message_ordering_fifo(systemg8):
    """Two same-tag sends must match receives in order."""
    engine = SimEngine(systemg8, SimConfig())
    sizes = [1 << 10, 1 << 20]

    def prog(ctx):
        if ctx.rank == 0:
            for s in sizes:
                yield from ctx.send(dst=1, nbytes=s, tag=7)
        else:
            yield from ctx.recv(src=0, tag=7)
            yield from ctx.recv(src=0, tag=7)

    res = engine.run(prog, size=2)
    assert res.trace.b_total == sum(sizes)


def test_deadlock_detected(systemg8):
    engine = SimEngine(systemg8, SimConfig())

    def prog(ctx):
        # both ranks recv first: classic deadlock
        peer = 1 - ctx.rank
        yield from ctx.recv(src=peer)
        yield from ctx.send(dst=peer, nbytes=8)

    with pytest.raises(DeadlockError, match="blocked ranks"):
        engine.run(prog, size=2)


def test_mismatched_tag_deadlocks(systemg8):
    engine = SimEngine(systemg8, SimConfig())

    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.send(dst=1, nbytes=8, tag=1)
        else:
            yield from ctx.recv(src=0, tag=2)

    with pytest.raises(DeadlockError):
        engine.run(prog, size=2)


def test_program_exception_wrapped(systemg8):
    engine = SimEngine(systemg8, SimConfig())

    def prog(ctx):
        yield from ctx.compute(1.0)
        raise ValueError("boom")

    with pytest.raises(RankError, match="rank 0 program raised"):
        engine.run(prog, size=1)


def test_capacity_enforced(systemg8):
    engine = SimEngine(systemg8, SimConfig(procs_per_node=1))

    def prog(ctx):
        yield from ctx.compute(1.0)

    with pytest.raises(ConfigurationError, match="exceed capacity"):
        engine.run(prog, size=9)


def test_procs_per_node_placement(systemg8):
    engine = SimEngine(systemg8, SimConfig(procs_per_node=2))

    def prog(ctx):
        yield from ctx.compute(1.0)

    res = engine.run(prog, size=4)
    assert res.nodes_used == 2
    assert engine.node_of(3) == 1


def test_intra_node_messages_cheaper(systemg8):
    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.send(dst=1, nbytes=1 << 20)
        else:
            yield from ctx.recv(src=0)

    inter = SimEngine(systemg8, SimConfig(procs_per_node=1)).run(prog, 2)
    intra = SimEngine(systemg8, SimConfig(procs_per_node=2)).run(prog, 2)
    assert intra.total_time < inter.total_time
    assert intra.trace.intra_node_messages == 1
    assert inter.trace.intra_node_messages == 0


def test_determinism_with_seeded_noise(systemg8):
    def prog(ctx):
        yield from ctx.compute(1e6, 1e3)
        peer = 1 - ctx.rank
        yield from ctx.exchange(dst=peer, src=peer, nbytes=4096)

    cfg = lambda: SimConfig(noise=NoiseModel(seed=99))  # noqa: E731
    r1 = SimEngine(systemg8, cfg()).run(prog, 2)
    r2 = SimEngine(systemg8, cfg()).run(prog, 2)
    assert r1.total_time == r2.total_time


def test_io_segment(systemg8):
    def prog(ctx):
        yield from ctx.io(0.25)

    res = SimEngine(systemg8, SimConfig()).run(prog, 1)
    assert res.total_time == pytest.approx(0.25)
    seg = res.segments[0]
    assert seg.kind == "io"
    assert seg.io_active == pytest.approx(0.25)


def test_busy_seconds_filter(systemg8):
    def prog(ctx):
        yield from ctx.compute(1e6)
        yield from ctx.io(0.1)

    res = SimEngine(systemg8, SimConfig()).run(prog, 1)
    assert res.busy_seconds("io") == pytest.approx(0.1)
    assert res.busy_seconds() == pytest.approx(res.total_time)

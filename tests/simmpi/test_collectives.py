"""Collectives: message counts match closed forms; patterns complete."""

import math

import pytest

from repro.simmpi import collectives
from repro.simmpi.engine import SimConfig, SimEngine


def run_collective(cluster, size, body):
    def prog(ctx):
        yield from body(ctx)

    return SimEngine(cluster, SimConfig()).run(prog, size=size)


@pytest.mark.parametrize("p", [2, 3, 4, 7, 8])
def test_barrier_message_count(systemg8, p):
    res = run_collective(systemg8, p, collectives.barrier)
    assert res.trace.m_total == collectives.barrier_message_count(p)
    assert res.trace.b_total == 0


def test_barrier_single_rank_noop(systemg8):
    res = run_collective(systemg8, 1, collectives.barrier)
    assert res.trace.m_total == 0


@pytest.mark.parametrize("p", [2, 3, 4, 5, 8])
@pytest.mark.parametrize("root", [0, 1])
def test_bcast_message_count(systemg8, p, root):
    if root >= p:
        pytest.skip("root out of range")
    res = run_collective(
        systemg8, p, lambda ctx: collectives.bcast(ctx, nbytes=1024, root=root)
    )
    assert res.trace.m_total == p - 1
    assert res.trace.b_total == (p - 1) * 1024


@pytest.mark.parametrize("p", [2, 3, 4, 6, 8])
def test_reduce_message_count(systemg8, p):
    res = run_collective(
        systemg8, p, lambda ctx: collectives.reduce(ctx, nbytes=512)
    )
    assert res.trace.m_total == p - 1
    assert res.trace.b_total == (p - 1) * 512


@pytest.mark.parametrize("p", [2, 4, 8])
def test_allreduce_power_of_two(systemg8, p):
    res = run_collective(
        systemg8, p, lambda ctx: collectives.allreduce(ctx, nbytes=8)
    )
    assert res.trace.m_total == p * int(math.log2(p))
    assert res.trace.m_total == collectives.allreduce_message_count(p)


@pytest.mark.parametrize("p", [3, 5, 6, 7])
def test_allreduce_non_power_of_two(systemg8, p):
    res = run_collective(
        systemg8, p, lambda ctx: collectives.allreduce(ctx, nbytes=8)
    )
    assert res.trace.m_total == 2 * (p - 1)
    assert res.trace.m_total == collectives.allreduce_message_count(p)


@pytest.mark.parametrize("p", [2, 3, 4, 8])
def test_allgather_ring(systemg8, p):
    res = run_collective(
        systemg8, p, lambda ctx: collectives.allgather(ctx, nbytes_per_rank=100)
    )
    assert res.trace.m_total == collectives.allgather_message_count(p)
    assert res.trace.b_total == p * (p - 1) * 100


class TestAlltoall:
    @pytest.mark.parametrize("p", [2, 3, 4, 5, 8])
    def test_pairwise_counts(self, systemg8, p):
        res = run_collective(
            systemg8, p, lambda ctx: collectives.alltoall(ctx, nbytes_per_pair=256)
        )
        assert res.trace.m_total == collectives.alltoall_message_count(p, "pairwise")
        assert res.trace.b_total == collectives.alltoall_byte_count(p, 256, "pairwise")

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_bruck_counts(self, systemg8, p):
        res = run_collective(
            systemg8,
            p,
            lambda ctx: collectives.alltoall(ctx, nbytes_per_pair=256, algorithm="bruck"),
        )
        assert res.trace.m_total == collectives.alltoall_message_count(p, "bruck")
        assert res.trace.b_total == collectives.alltoall_byte_count(p, 256, "bruck")

    def test_bruck_moves_same_payload_volume(self):
        # Bruck relays blocks, so its wire bytes exceed the direct payload
        p, m = 8, 100
        direct = collectives.alltoall_byte_count(p, m, "pairwise")
        bruck = collectives.alltoall_byte_count(p, m, "bruck")
        assert bruck > direct / 2  # sanity: same order of magnitude
        assert bruck != direct

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_spread_counts(self, systemg8, p):
        res = run_collective(
            systemg8,
            p,
            lambda ctx: collectives.alltoall(ctx, nbytes_per_pair=256, algorithm="spread"),
        )
        assert res.trace.m_total == p * (p - 1)

    def test_pairwise_time_matches_paper_formula(self, systemg8):
        """The simulated all-to-all time equals the §V-B-1 closed form."""
        p, m = 8, 4096
        res = run_collective(
            systemg8, p, lambda ctx: collectives.alltoall(ctx, nbytes_per_pair=m)
        )
        net = systemg8.interconnect
        expected = collectives.pairwise_alltoall_time(p, m, net.ts, net.tw)
        assert res.total_time == pytest.approx(expected, rel=1e-9)

    def test_unknown_algorithm_rejected(self, systemg8):
        from repro.errors import RankError

        with pytest.raises(RankError, match="unknown alltoall"):
            run_collective(
                systemg8,
                2,
                lambda ctx: collectives.alltoall(ctx, 16, algorithm="magic"),
            )


def test_back_to_back_collectives_do_not_cross_match(systemg8):
    """Distinct tag bases keep consecutive collectives independent."""

    def body(ctx):
        yield from collectives.allreduce(ctx, nbytes=8)
        yield from collectives.alltoall(ctx, nbytes_per_pair=64)
        yield from collectives.barrier(ctx)
        yield from collectives.bcast(ctx, nbytes=32)

    p = 8
    res = run_collective(systemg8, p, body)
    expected = (
        collectives.allreduce_message_count(p)
        + collectives.alltoall_message_count(p)
        + collectives.barrier_message_count(p)
        + collectives.bcast_message_count(p)
    )
    assert res.trace.m_total == expected


def test_closed_forms_reject_bad_p():
    from repro.errors import RankError

    with pytest.raises(RankError):
        collectives.alltoall_message_count(0)
    with pytest.raises(RankError):
        collectives.allreduce_message_count(-1)

"""Scatter/gather collectives."""

import pytest

from repro.simmpi import collectives
from repro.simmpi.engine import SimConfig, SimEngine


def run(cluster, size, body):
    def prog(ctx):
        yield from body(ctx)

    return SimEngine(cluster, SimConfig()).run(prog, size=size)


@pytest.mark.parametrize("p", [2, 3, 4, 8])
@pytest.mark.parametrize("root", [0, 1])
def test_scatter_counts(systemg8, p, root):
    if root >= p:
        pytest.skip("root out of range")
    res = run(
        systemg8, p, lambda ctx: collectives.scatter(ctx, nbytes_per_rank=256, root=root)
    )
    assert res.trace.m_total == collectives.scatter_message_count(p)
    assert res.trace.b_total == (p - 1) * 256


@pytest.mark.parametrize("p", [2, 3, 4, 8])
def test_gather_counts(systemg8, p):
    res = run(
        systemg8, p, lambda ctx: collectives.gather(ctx, nbytes_per_rank=512)
    )
    assert res.trace.m_total == collectives.gather_message_count(p)
    assert res.trace.b_total == (p - 1) * 512


def test_scatter_then_gather_roundtrip(systemg8):
    def body(ctx):
        yield from collectives.scatter(ctx, nbytes_per_rank=128)
        yield from collectives.gather(ctx, nbytes_per_rank=128)

    p = 4
    res = run(systemg8, p, body)
    assert res.trace.m_total == 2 * (p - 1)


def test_single_rank_noop(systemg8):
    res = run(systemg8, 1, lambda ctx: collectives.scatter(ctx, nbytes_per_rank=64))
    assert res.trace.m_total == 0


def test_gather_root_overlaps_receives(systemg8):
    """The root posts all receives at once; senders arrive concurrently."""
    p = 8
    res = run(
        systemg8, p, lambda ctx: collectives.gather(ctx, nbytes_per_rank=1 << 16)
    )
    net = systemg8.interconnect
    one_transfer = net.ts + (1 << 16) * net.tw
    # far faster than p−1 serialized transfers
    assert res.total_time < 0.5 * (p - 1) * one_transfer


def test_negative_size_rejected(systemg8):
    from repro.errors import RankError

    with pytest.raises(RankError):
        run(systemg8, 2, lambda ctx: collectives.scatter(ctx, nbytes_per_rank=-1))

"""Single-group reduction: one pool must BE the homogeneous model.

The anchor property of the whole subsystem: a one-pool
:class:`~repro.hetero.space.HeteroSpace` over (counts × rungs) is the
same search as the homogeneous (p × f) grid, and must reproduce
``evaluate_grid`` and the homogeneous solvers **bit for bit** — values
and tie-breaking picks alike.
"""

import numpy as np
import pytest

from repro.hetero.space import HeteroSpace, evaluate_space, pool_from_machine
from repro.hetero.solve import (
    max_speedup_under_power,
    min_energy_under_deadline,
    pareto_frontier,
)
from repro.npb.workloads import benchmark_for
from repro.optimize import budget as homo
from repro.optimize.grid import evaluate_grid
from repro.paperdata import paper_model
from repro.units import GHZ

P_VALUES = (1, 2, 4, 8, 16, 32, 64)
F_GHZ = (1.6, 2.0, 2.4, 2.8)


def _pair(benchmark: str, klass: str = "B"):
    """(homogeneous model, single-pool space) over identical axes."""
    model, n = paper_model(benchmark, klass)
    bench, _ = benchmark_for(benchmark, klass)
    pool = pool_from_machine(
        "only", model.machine, count_values=P_VALUES, f_values_ghz=F_GHZ
    )
    space = HeteroSpace(
        label="reduction", pools=(pool,), workload=bench.workload, n=n,
        policies=("balanced",),
    )
    return model, n, space


@pytest.mark.parametrize("bench_name", ["FT", "CG", "EP"])
def test_grid_values_bit_for_bit(bench_name):
    model, n, space = _pair(bench_name)
    homo_grid = evaluate_grid(
        model, p_values=P_VALUES, f_values=[f * GHZ for f in F_GHZ],
        n_values=[n],
    )
    het = evaluate_space(space)
    assert het.size == len(P_VALUES) * len(F_GHZ)
    for name in ("tp", "ep", "e1", "ee", "avg_power"):
        np.testing.assert_array_equal(
            getattr(het, name),
            getattr(homo_grid, name)[:, :, 0].ravel(),
            err_msg=f"{bench_name}:{name} not bit-identical",
        )


def test_flat_order_matches_grid_order():
    """Count-major, rung-minor — exactly the grid's (p, f) flattening."""
    _, _, space = _pair("FT")
    het = evaluate_space(space)
    expect = [
        (p, f * GHZ) for p in P_VALUES for f in F_GHZ
    ]
    got = [
        (int(het.counts[k, 0]), float(het.freqs[k, 0]))
        for k in range(het.size)
    ]
    assert got == expect


@pytest.mark.parametrize("budget_w", [900.0, 2000.0, 4000.0, 8000.0])
def test_budget_solver_picks_agree(budget_w):
    model, n, space = _pair("FT")
    h = homo.max_speedup_under_power(
        model, n=n, budget_w=budget_w, p_values=P_VALUES,
        f_values=[f * GHZ for f in F_GHZ],
    )
    x = max_speedup_under_power(space, budget_w=budget_w)
    assert (x.pools[0].count, x.pools[0].f) == (h.p, h.f)
    assert (x.tp, x.ep, x.ee, x.avg_power) == (h.tp, h.ep, h.ee, h.avg_power)
    assert x.feasible_count == h.feasible_count


@pytest.mark.parametrize("t_max", [15.0, 40.0, 200.0])
def test_deadline_solver_picks_agree(t_max):
    model, n, space = _pair("CG")
    h = homo.min_energy_under_deadline(
        model, n=n, t_max=t_max, p_values=P_VALUES,
        f_values=[f * GHZ for f in F_GHZ],
    )
    x = min_energy_under_deadline(space, t_max=t_max)
    assert (x.pools[0].count, x.pools[0].f) == (h.p, h.f)
    assert (x.tp, x.ep) == (h.tp, h.ep)
    assert x.feasible_count == h.feasible_count


def test_pareto_frontiers_agree():
    model, n, space = _pair("FT")
    h = homo.pareto_frontier(
        model, n=n, p_values=P_VALUES, f_values=[f * GHZ for f in F_GHZ]
    )
    x = pareto_frontier(space)
    assert len(x) == len(h)
    for hx, hh in zip(x, h):
        assert (hx.pools[0].count, hx.pools[0].f) == (hh.p, hh.f)
        assert (hx.tp, hx.ep) == (hh.tp, hh.ep)


def test_infeasible_budget_reports_frugalest_draw():
    model, n, space = _pair("FT")
    from repro.errors import ParameterError

    with pytest.raises(ParameterError) as het_err:
        max_speedup_under_power(space, budget_w=1.0)
    with pytest.raises(ParameterError) as homo_err:
        homo.max_speedup_under_power(
            model, n=n, budget_w=1.0, p_values=P_VALUES,
            f_values=[f * GHZ for f in F_GHZ],
        )
    # both report the same frugalest wattage (the texts differ by shape)
    assert str(het_err.value).split()[-2] == str(homo_err.value).split()[-2]

"""The vectorized mixed-pool space: equivalence, ordering, caching."""

import numpy as np
import pytest

from repro.core.hetero import HeteroIsoEnergyModel, ProcessorGroup
from repro.core.parameters import AppParams
from repro.errors import ParameterError
from repro.hetero.space import (
    MAX_ALLOCATIONS,
    HeteroSpace,
    Pool,
    PoolSpec,
    evaluate_space,
    hetero_grid,
    pool_from_machine,
    scalar_space_points,
)
from repro.hetero.solve import space_for
from repro.optimize.engine import GridStore


@pytest.fixture(scope="module")
def mixed_space():
    return space_for(
        "FT",
        "B",
        pools=(
            PoolSpec("fast", "systemg", (1, 2, 4, 8), (2.4, 2.8)),
            PoolSpec("slow", "dori", (1, 2, 4), (1.8,)),
        ),
        policies=("balanced", "uniform"),
    )


class TestSpaceValidation:
    def test_needs_pools(self):
        with pytest.raises(ParameterError, match="at least one pool"):
            HeteroSpace(label="x", pools=(), workload=None, n=1.0)

    def test_unique_pool_names(self, machine):
        pool = pool_from_machine("a", machine, count_values=[1])
        twin = pool_from_machine("a", machine, count_values=[2])
        with pytest.raises(ParameterError, match="unique"):
            HeteroSpace(label="x", pools=(pool, twin), workload=None, n=1.0)

    def test_unknown_policy(self, machine):
        pool = pool_from_machine("a", machine, count_values=[1])
        with pytest.raises(ParameterError, match="unknown split policy"):
            HeteroSpace(
                label="x", pools=(pool,), workload=None, n=1.0,
                policies=("random",),
            )

    def test_duplicate_policy(self, machine):
        pool = pool_from_machine("a", machine, count_values=[1])
        with pytest.raises(ParameterError, match="duplicate"):
            HeteroSpace(
                label="x", pools=(pool,), workload=None, n=1.0,
                policies=("balanced", "balanced"),
            )

    def test_allocation_cap(self, machine):
        pool = pool_from_machine(
            "a", machine, count_values=range(1, 501)
        )
        big = pool_from_machine("b", machine, count_values=range(1, 501))
        with pytest.raises(ParameterError, match=str(MAX_ALLOCATIONS)):
            HeteroSpace(label="x", pools=(pool, big), workload=None, n=1.0)

    def test_pool_needs_counts_and_rungs(self, machine):
        with pytest.raises(ParameterError, match="candidate count"):
            Pool(name="a", count_values=(), machines=(machine,))
        with pytest.raises(ParameterError, match="frequency rung"):
            Pool(name="a", count_values=(1,), machines=())
        with pytest.raises(ParameterError, match=">= 1"):
            Pool(name="a", count_values=(0,), machines=(machine,))


class TestVectorizedEquivalence:
    """evaluate_space must match the per-allocation core scalar loop."""

    def test_matches_scalar_loop(self, mixed_space):
        grid = evaluate_space(mixed_space)
        points = scalar_space_points(mixed_space)
        assert grid.size == len(points) == mixed_space.size
        for name in ("tp", "ep", "e1", "ee", "avg_power"):
            np.testing.assert_allclose(
                getattr(grid, name),
                [getattr(p, name) for p in points],
                rtol=1e-12,
                err_msg=name,
            )

    def test_allocation_columns_match_scalar_order(self, mixed_space):
        grid = evaluate_space(mixed_space)
        points = scalar_space_points(mixed_space)
        for k in (0, 7, grid.size - 1):
            assert grid.point(k).pools == points[k].pools
            assert grid.point(k).policy == points[k].policy
            assert grid.point(k).total_p == points[k].total_p

    def test_policy_axis_is_outermost(self, mixed_space):
        grid = evaluate_space(mixed_space)
        mixes = grid.mixes
        assert (grid.policy_codes[:mixes] == 0).all()
        assert (grid.policy_codes[mixes:] == 1).all()
        # the mix columns repeat across the policy axis
        np.testing.assert_array_equal(
            grid.counts[:mixes], grid.counts[mixes:]
        )

    def test_arrays_are_frozen(self, mixed_space):
        grid = evaluate_space(mixed_space)
        with pytest.raises(ValueError):
            grid.tp[0] = 0.0

    def test_policies_coincide_on_identical_pools(self, machine):
        """Equal-speed pools make balanced ∝ count — exactly uniform."""
        from repro.npb.workloads import workload_for

        workload, n = workload_for("FT", "W")
        pools = tuple(
            pool_from_machine(name, machine, count_values=(1, 2, 4))
            for name in ("a", "b")
        )
        space = HeteroSpace(
            label="twin", pools=pools, workload=workload, n=n,
            policies=("balanced", "uniform"),
        )
        grid = evaluate_space(space)
        mixes = grid.mixes
        np.testing.assert_array_equal(grid.tp[:mixes], grid.tp[mixes:])
        np.testing.assert_array_equal(grid.ep[:mixes], grid.ep[mixes:])


class TestAdversarialTies:
    """Symmetric pools create exact ties; both paths must break them alike."""

    @pytest.fixture()
    def symmetric_space(self, machine):
        # two *identical* pools: swapping their (count, f) picks yields
        # bitwise-identical tp/ep, so the space is full of exact ties
        def workload(n, p):
            kwargs = dict(
                alpha=0.9, wc=1e10 * n, wm=2e8 * n, n=n, p=p
            )
            if p > 1:
                kwargs.update(
                    wco=5e7 * n * p, wmo=1e6 * n,
                    m_messages=1e3 * p, b_bytes=1e8,
                )
            return AppParams(**kwargs)

        pools = tuple(
            pool_from_machine(
                name, machine, count_values=(1, 2, 4),
                f_values_ghz=(2.0, 2.8),
            )
            for name in ("left", "right")
        )
        return HeteroSpace(
            label="sym", pools=pools, workload=workload, n=1.0,
            policies=("balanced",),
        )

    def test_tie_counts_are_real(self, symmetric_space):
        grid = evaluate_space(symmetric_space)
        _, counts = np.unique(grid.tp, return_counts=True)
        assert (counts >= 2).any(), "fixture no longer produces ties"

    def test_vectorized_and_scalar_argmin_agree(self, symmetric_space):
        grid = evaluate_space(symmetric_space)
        points = scalar_space_points(symmetric_space)
        for metric in ("tp", "ep", "ee"):
            vec = int(np.argmin(getattr(grid, metric)))
            best, scal = None, None
            for k, p in enumerate(points):
                v = getattr(p, metric)
                if best is None or v < best:
                    best, scal = v, k
            assert vec == scal, metric


class TestDegenerateWorkloads:
    def test_no_work_message_names_first_group(self, machine):
        class Sneaky:
            """Dodges AppParams validation to hit the hetero guard."""

            def params(self, n, p):
                app = AppParams(alpha=0.9, wc=1.0, n=n, p=p)
                object.__setattr__(app, "wc", 0.0)
                return app

        pool = pool_from_machine("first", machine, count_values=(2,))
        space = HeteroSpace(
            label="x", pools=(pool,), workload=Sneaky(), n=1.0
        )
        with pytest.raises(ParameterError) as vec_err:
            evaluate_space(space)
        # parity with the scalar path's structured error
        group = ProcessorGroup(name="first", machine=machine, count=2)
        with pytest.raises(ParameterError) as scalar_err:
            HeteroIsoEnergyModel([group]).split_shares(
                Sneaky().params(1.0, 2)
            )
        assert str(vec_err.value) == str(scalar_err.value)
        assert "group first" in str(vec_err.value)


class TestStoreIntegration:
    def test_repeat_evaluation_hits(self, mixed_space):
        store = GridStore()
        first = hetero_grid(mixed_space, store=store)
        again = hetero_grid(mixed_space, store=store)
        assert again is first
        stats = store.stats()
        assert stats["hetero_misses"] == 1
        assert stats["hetero_hits"] == 1
        assert stats["hetero_entries"] == 1
        assert stats["hetero_bytes"] == first.nbytes > 0

    def test_distinct_spaces_miss(self, mixed_space):
        store = GridStore()
        hetero_grid(mixed_space, store=store)
        # a different space object is a different signature
        other = space_for(
            "EP", "W",
            pools=(PoolSpec("solo", "systemg", (1, 2)),),
        )
        hetero_grid(other, store=store)
        assert store.stats()["hetero_misses"] == 2
        assert store.stats()["hetero_hits"] == 0

    def test_lru_bound_and_clear(self):
        store = GridStore(max_entries=2)
        spaces = [
            space_for(
                "EP", "W",
                pools=(PoolSpec("a", "systemg", (1, 1 + k)),),
            )
            for k in range(1, 4)
        ]
        for sp in spaces:
            hetero_grid(sp, store=store)
        stats = store.stats()
        assert stats["hetero_entries"] == 2
        assert stats["hetero_evictions"] == 1
        store.clear()
        stats = store.stats()
        assert stats["hetero_entries"] == 0
        assert stats["hetero_bytes"] == 0

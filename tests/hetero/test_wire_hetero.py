"""The hetero wire surface: round trips, dispatch, batch, CLI parity."""

import json

import pytest

from repro.api.schemas import request_from_dict, response_from_dict
from repro.api.service import clear_caches, dispatch
from repro.api.types import (
    API_VERSION,
    BatchRequest,
    BudgetQuery,
    HeteroRequest,
    HeteroResponse,
)
from repro.errors import ParameterError, WireError
from repro.hetero.space import PoolSpec

POOLS = (
    PoolSpec("fast", "systemg", (1, 2, 4, 8), (2.4, 2.8)),
    PoolSpec("slow", "dori", (1, 2, 4), (1.8,)),
)

FULL_REQUEST = HeteroRequest(
    benchmark="FT",
    pools=POOLS,
    policies=("balanced", "uniform"),
    budget_w=3000.0,
    deadline_s=60.0,
    pareto=True,
    policy_gap=True,
)


class TestWireRoundTrip:
    def test_request_round_trip(self):
        payload = json.loads(json.dumps(FULL_REQUEST.to_dict()))
        assert payload["op"] == "hetero" and payload["v"] == API_VERSION
        assert request_from_dict(payload) == FULL_REQUEST

    def test_response_round_trip(self):
        resp = dispatch(FULL_REQUEST)
        payload = json.loads(json.dumps(resp.to_dict()))
        assert response_from_dict(payload) == resp

    def test_minimal_payload_defaults(self):
        req = request_from_dict({
            "op": "hetero",
            "pools": [{"name": "a"}],
            "budget_w": 1000.0,
        })
        assert req.pools == (PoolSpec("a"),)
        assert req.policies == ("balanced",)

    def test_unknown_pool_field_rejected(self):
        with pytest.raises(WireError, match="PoolSpec"):
            request_from_dict({
                "op": "hetero",
                "pools": [{"name": "a", "nodes": 4}],
            })

    def test_foreign_version_rejected(self):
        with pytest.raises(WireError, match="wire version"):
            request_from_dict({"op": "hetero", "v": 3})

    def test_unknown_field_rejected(self):
        with pytest.raises(WireError, match="unknown field"):
            request_from_dict({"op": "hetero", "pool": []})


class TestDispatch:
    def test_unrequested_slots_are_null(self):
        resp = dispatch(HeteroRequest(pools=POOLS, budget_w=2000.0))
        assert isinstance(resp, HeteroResponse)
        assert resp.budget is not None
        assert resp.deadline is None
        assert resp.pareto == ()
        assert resp.policy_gap is None

    def test_no_objective_rejected(self):
        with pytest.raises(ParameterError, match="nothing to solve"):
            dispatch(HeteroRequest(pools=POOLS))

    def test_no_pools_rejected(self):
        with pytest.raises(ParameterError, match="at least one pool"):
            dispatch(HeteroRequest(budget_w=1000.0))

    def test_dispatch_memoises(self):
        req = HeteroRequest(pools=POOLS, budget_w=1234.0)
        assert dispatch(req) is dispatch(
            HeteroRequest(pools=POOLS, budget_w=1234.0)
        )

    def test_repeat_queries_share_one_hetero_grid(self):
        from repro.api.service import cache_info

        clear_caches()
        dispatch(HeteroRequest(pools=POOLS, budget_w=1500.0))
        before = cache_info()["grid_store"]
        dispatch(HeteroRequest(pools=POOLS, deadline_s=90.0))
        after = cache_info()["grid_store"]
        assert after["hetero_misses"] == before["hetero_misses"]
        assert after["hetero_hits"] > before["hetero_hits"]


class TestBatch:
    def test_hetero_item_matches_single_dispatch(self):
        single = dispatch(FULL_REQUEST)
        batch = dispatch(BatchRequest(items=(
            FULL_REQUEST,
            BudgetQuery(benchmark="FT", budget_w=3000.0),
        )))
        assert batch.items[0].ok
        assert batch.items[0].response.to_dict() == single.to_dict()

    def test_bad_hetero_item_fails_alone_with_scalar_message(self):
        """The bugfix satellite: per-item structured errors, message
        parity with what the same request raises on single dispatch."""
        bad = HeteroRequest(
            pools=(PoolSpec("a", "nonesuch"),), budget_w=1000.0
        )
        with pytest.raises(Exception) as single_err:
            dispatch(bad)
        batch = dispatch(BatchRequest(items=(
            HeteroRequest(pools=POOLS, budget_w=2000.0),
            bad,
            BudgetQuery(benchmark="FT", budget_w=3000.0),
        )))
        assert [item.ok for item in batch.items] == [True, False, True]
        slot = batch.items[1].error
        assert slot.type == type(single_err.value).__name__
        assert slot.message == str(single_err.value)

    def test_infeasible_hetero_item_fails_alone(self):
        bad = HeteroRequest(pools=POOLS, budget_w=2.0)
        with pytest.raises(ParameterError) as single_err:
            dispatch(bad)
        batch = dispatch(BatchRequest(items=(
            bad, HeteroRequest(pools=POOLS, budget_w=2000.0),
        )))
        assert [item.ok for item in batch.items] == [False, True]
        assert batch.items[0].error.type == "ParameterError"
        assert batch.items[0].error.message == str(single_err.value)

    def test_batch_wire_round_trip_with_hetero(self):
        batch = dispatch(BatchRequest(items=(FULL_REQUEST,)))
        payload = json.loads(json.dumps(batch.to_dict()))
        assert response_from_dict(payload) == batch


class TestCliParity:
    def test_cli_json_is_the_http_payload(self, capsys):
        from repro.cli import main

        code = main([
            "hetero",
            "--pool", "fast:systemg:1|2|4|8:2.4|2.8",
            "--pool", "slow:dori:1|2|4:1.8",
            "--policies", "balanced,uniform",
            "--power-budget", "3000",
            "--deadline", "60",
            "--pareto", "--policy-gap",
            "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == dispatch(FULL_REQUEST).to_dict()

    def test_cli_text_mentions_the_mix(self, capsys):
        from repro.cli import main

        code = main([
            "hetero",
            "--pool", "fast:systemg:4|8:2.8",
            "--pool", "slow:dori:2",
            "--power-budget", "3000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "max_speedup_under_power" in out
        assert "fastx" in out and "slowx" in out

    def test_cli_policies_tolerate_spaces(self, capsys):
        from repro.cli import main

        code = main([
            "hetero",
            "--pool", "fast:systemg:2|4:2.8",
            "--policies", "balanced, uniform",
            "--power-budget", "3000",
            "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["budget"]["policy"] in ("balanced", "uniform")

    def test_cli_rejects_malformed_pool(self, capsys):
        from repro.cli import main

        assert main(["hetero", "--pool", "just-a-name"]) == 2
        assert "--pool expects" in capsys.readouterr().err

    def test_cli_needs_a_pool(self, capsys):
        from repro.cli import main

        assert main(["hetero", "--power-budget", "100"]) == 2
        assert "at least one --pool" in capsys.readouterr().err

"""Calibrated-model optimization: fitted Θ1 drives the solvers stably."""

import pytest

from repro.hetero.space import HeteroSpace, pool_from_machine
from repro.hetero.solve import max_speedup_under_power as hetero_budget
from repro.npb.workloads import benchmark_for
from repro.optimize.budget import max_speedup_under_power
from repro.paperdata import paper_model
from repro.units import GHZ
from repro.validation.calibration import calibrated_model

P_VALUES = (1, 2, 4, 8, 16, 32, 64)
F_VALUES = tuple(f * GHZ for f in (1.6, 2.0, 2.4, 2.8))
SEEDS = (0, 1, 2, 3)


@pytest.fixture(scope="module")
def calibrated():
    """Measurement-calibrated (model, n) per seed — noise included."""
    return {seed: calibrated_model("systemg", "FT", seed=seed)
            for seed in SEEDS}


def test_calibrated_theta1_differs_from_analytic(calibrated):
    analytic, _ = paper_model("FT", "B")
    measured, _ = calibrated[0]
    assert measured.machine.tc != analytic.machine.tc  # noise is real
    # ... but lands near the exact hardware read
    assert measured.machine.tc == pytest.approx(
        analytic.machine.tc, rel=0.05
    )


def test_budget_recommendation_stable_under_noise(calibrated):
    """Small measurement noise must not flip the solver's pick."""
    picks = set()
    for seed in SEEDS:
        model, n = calibrated[seed]
        rec = max_speedup_under_power(
            model, n=n, budget_w=3000.0, p_values=P_VALUES,
            f_values=F_VALUES,
        )
        picks.add((rec.p, rec.f))
    assert len(picks) == 1


def test_calibrated_matches_analytic_pick(calibrated):
    analytic, n = paper_model("FT", "B")
    exact = max_speedup_under_power(
        analytic, n=n, budget_w=3000.0, p_values=P_VALUES,
        f_values=F_VALUES,
    )
    model, n_cal = calibrated[0]
    measured = max_speedup_under_power(
        model, n=n_cal, budget_w=3000.0, p_values=P_VALUES,
        f_values=F_VALUES,
    )
    assert (measured.p, measured.f) == (exact.p, exact.f)


def test_hetero_solver_accepts_calibrated_pools(calibrated):
    """Fitted Θ1 slots into a mixed-pool space via pool_from_machine."""
    bench, n = benchmark_for("FT", "B")
    picks = set()
    for seed in SEEDS:
        model, _ = calibrated[seed]
        pool = pool_from_machine(
            "cal", model.machine, count_values=(1, 2, 4, 8, 16),
            f_values_ghz=(2.0, 2.4, 2.8),
        )
        space = HeteroSpace(
            label=f"cal-{seed}", pools=(pool,), workload=bench.workload,
            n=n,
        )
        rec = hetero_budget(space, budget_w=2500.0)
        picks.add((rec.pools[0].count, rec.pools[0].f))
    assert len(picks) == 1


def test_custom_theta2_hook():
    """The workload= hook substitutes a fitted Θ2 source."""
    from repro.core.parameters import AppParams

    calls = []

    def fitted(n, p):
        calls.append((n, p))
        kwargs = dict(alpha=0.9, wc=1e9 * n, wm=1e7 * n, n=n, p=p)
        if p > 1:
            kwargs.update(wco=1e6 * n * p, m_messages=10.0 * p, b_bytes=1e6)
        return AppParams(**kwargs)

    model, n = calibrated_model("systemg", "FT", workload=fitted)
    rec = max_speedup_under_power(
        model, n=1.0, budget_w=3000.0, p_values=(1, 2, 4),
        f_values=F_VALUES,
    )
    assert calls, "the fitted workload was never consulted"
    assert rec.p >= 1

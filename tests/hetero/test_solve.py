"""Allocation solvers: semantics, feasibility errors, policy gap."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.hetero.solve import (
    max_speedup_under_power,
    min_energy_under_deadline,
    pareto_frontier,
    policy_gap,
    resolve_pools,
    space_for,
)
from repro.hetero.space import PoolSpec, hetero_grid


@pytest.fixture(scope="module")
def space():
    return space_for(
        "FT",
        "B",
        pools=(
            PoolSpec("fast", "systemg", (1, 2, 4, 8), (2.4, 2.8)),
            PoolSpec("slow", "dori", (1, 2, 4), (1.8,)),
        ),
        policies=("balanced", "uniform"),
    )


class TestBudget:
    def test_budget_binds(self, space):
        rec = max_speedup_under_power(space, budget_w=900.0)
        assert rec.avg_power <= 900.0
        assert rec.objective == "max_speedup_under_power"
        assert {c.pool for c in rec.pools} == {"fast", "slow"}

    def test_slack_budget_takes_fastest(self, space):
        grid = hetero_grid(space)
        rec = max_speedup_under_power(space, budget_w=1e9)
        assert rec.tp == float(grid.tp.min())
        assert rec.feasible_count == grid.size

    def test_more_watts_never_slower(self, space):
        tps = [
            max_speedup_under_power(space, budget_w=w).tp
            for w in (600.0, 900.0, 1500.0, 3000.0)
        ]
        assert tps == sorted(tps, reverse=True)

    def test_nonpositive_budget(self, space):
        with pytest.raises(ParameterError, match="must be positive"):
            max_speedup_under_power(space, budget_w=0.0)

    def test_hopeless_budget_names_frugalest_draw(self, space):
        grid = hetero_grid(space)
        with pytest.raises(ParameterError) as err:
            max_speedup_under_power(space, budget_w=2.0)
        assert f"{float(grid.avg_power.min()):.0f} W" in str(err.value)


class TestDeadline:
    def test_deadline_binds(self, space):
        rec = min_energy_under_deadline(space, t_max=40.0)
        assert rec.tp <= 40.0
        assert rec.objective == "min_energy_under_deadline"

    def test_slack_deadline_takes_greenest(self, space):
        grid = hetero_grid(space)
        rec = min_energy_under_deadline(space, t_max=1e9)
        assert rec.ep == float(grid.ep.min())

    def test_impossible_deadline(self, space):
        with pytest.raises(ParameterError, match="fastest"):
            min_energy_under_deadline(space, t_max=1e-6)

    def test_nonpositive_deadline(self, space):
        with pytest.raises(ParameterError, match="must be positive"):
            min_energy_under_deadline(space, t_max=-1.0)


class TestPareto:
    def test_frontier_monotone(self, space):
        front = pareto_frontier(space)
        assert len(front) >= 2
        tps = [r.tp for r in front]
        eps = [r.ep for r in front]
        assert tps == sorted(tps)
        assert eps == sorted(eps, reverse=True)

    def test_no_member_dominated(self, space):
        grid = hetero_grid(space)
        front = pareto_frontier(space)
        for r in front:
            dominated = (grid.tp < r.tp) & (grid.ep < r.ep)
            assert not dominated.any()

    def test_feasible_count_is_frontier_size(self, space):
        front = pareto_frontier(space)
        assert all(r.feasible_count == len(front) for r in front)


class TestPolicyGap:
    def test_gap_positive_on_mixed_pools(self, space):
        gap = policy_gap(space)
        assert gap.mixes == space.mixes
        assert gap.max_gap > 0.0
        assert gap.max_gap >= gap.mean_gap
        assert {c.pool for c in gap.worst} == {"fast", "slow"}

    def test_single_pool_gap_is_zero(self):
        solo = space_for(
            "FT", "B", pools=(PoolSpec("only", "systemg", (1, 2, 4)),),
        )
        gap = policy_gap(solo)
        assert gap.max_gap == pytest.approx(0.0, abs=1e-12)
        assert gap.mean_gap == pytest.approx(0.0, abs=1e-12)

    def test_repeated_gap_queries_share_one_twin_grid(self):
        """The synthesised two-policy twin must be memoised — the store
        keys on space identity, so a fresh twin per call would
        re-evaluate the whole grid every time."""
        from repro.optimize.engine import default_store

        solo = space_for(
            "EP", "W",
            pools=(
                PoolSpec("a", "systemg", (2, 4), (2.8,)),
                PoolSpec("b", "dori", (2,), (1.8,)),
            ),
            policies=("balanced",),
        )
        before = default_store().stats()["hetero_misses"]
        first = policy_gap(solo)
        mid = default_store().stats()["hetero_misses"]
        second = policy_gap(solo)
        after = default_store().stats()["hetero_misses"]
        assert mid == before + 1  # one evaluation for the twin
        assert after == mid  # ... reused on the repeat
        assert first == second

    def test_oversized_twin_gets_an_honest_error(self, machine):
        """A single-policy space under the cap whose two-policy twin
        would exceed it must fail with the real constraint, not a
        message about a doubled space the caller never built."""
        from repro.hetero.space import (
            MAX_ALLOCATIONS, HeteroSpace, pool_from_machine,
        )
        from repro.npb.workloads import workload_for

        workload, n = workload_for("EP", "W")
        side = 350  # 350 × 350 = 122_500 mixes: legal alone, 2× is not
        pools = tuple(
            pool_from_machine(name, machine, count_values=range(1, side + 1))
            for name in ("a", "b")
        )
        space = HeteroSpace(
            label="big", pools=pools, workload=workload, n=n,
            policies=("balanced",),
        )
        assert space.size <= MAX_ALLOCATIONS  # the space itself is valid
        with pytest.raises(ParameterError, match="policy_gap evaluates"):
            policy_gap(space)

    def test_missing_policy_is_synthesised(self):
        balanced_only = space_for(
            "FT",
            "B",
            pools=(
                PoolSpec("fast", "systemg", (2, 4), (2.8,)),
                PoolSpec("slow", "dori", (2,), (1.8,)),
            ),
            policies=("balanced",),
        )
        gap = policy_gap(balanced_only)
        assert gap.mixes == balanced_only.mixes
        assert gap.max_gap > 0.0


class TestResolution:
    def test_unknown_machine_name(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown machine"):
            space_for(
                "FT", "B", pools=(PoolSpec("x", "nonesuch", (1, 2)),),
            )

    def test_duplicate_pool_names_rejected(self):
        with pytest.raises(ParameterError, match="duplicate pool name"):
            resolve_pools(
                (PoolSpec("a", "systemg"), PoolSpec("a", "dori"))
            )

    def test_empty_pool_set_rejected(self):
        with pytest.raises(ParameterError, match="at least one pool"):
            resolve_pools(())

    def test_bad_counts_rejected(self):
        with pytest.raises(ParameterError, match=">= 1"):
            resolve_pools((PoolSpec("a", "systemg", (0, 2)),))
        with pytest.raises(ParameterError, match="candidate count"):
            resolve_pools((PoolSpec("a", "systemg", ()),))

    def test_bad_frequency_rejected(self):
        with pytest.raises(ParameterError, match="must be positive"):
            resolve_pools(
                (PoolSpec("a", "systemg", (1,), (-2.0,)),)
            )

    def test_bad_n_factor(self):
        with pytest.raises(ParameterError, match="n_factor"):
            space_for(
                "FT", "B", pools=(PoolSpec("a", "systemg"),), n_factor=0.0,
            )

    def test_hypothetical_machine_as_pool(self):
        from repro.federation.registry import ShardRegistry

        registry = ShardRegistry()
        registry.register_hypothetical(
            "turbo", base="systemg", net_per_byte_scale=0.5,
        )
        fast = space_for(
            "FT", "B",
            pools=(PoolSpec("a", "turbo", (4,), (2.8,)),),
            registry=registry,
        )
        base = space_for(
            "FT", "B",
            pools=(PoolSpec("a", "systemg", (4,), (2.8,)),),
            registry=registry,
        )
        # half the per-byte time → faster tw → strictly faster mix
        assert float(hetero_grid(fast).tp[0]) < float(hetero_grid(base).tp[0])

"""Live-server smoke: ``POST /v1/hetero`` and hetero-in-batch over HTTP."""

import asyncio
import json
import threading
import urllib.request

import pytest

from repro.api.server import start_server

HETERO_BODY = {
    "benchmark": "FT",
    "pools": [
        {"name": "fast", "cluster": "systemg", "count_values": [1, 2, 4, 8],
         "f_values_ghz": [2.4, 2.8]},
        {"name": "slow", "cluster": "dori", "count_values": [1, 2],
         "f_values_ghz": [1.8]},
    ],
    "policies": ["balanced", "uniform"],
    "budget_w": 3000.0,
    "policy_gap": True,
}


@pytest.fixture(scope="module")
def live_server():
    loop = asyncio.new_event_loop()
    server = loop.run_until_complete(start_server("127.0.0.1", 0))
    port = server.sockets[0].getsockname()[1]
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{port}"
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=5)


def _post(base: str, path: str, body) -> tuple[int, dict]:
    request = urllib.request.Request(
        f"{base}{path}", data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"}, method="POST",
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, json.loads(response.read())


def test_hetero_op_is_served(live_server):
    status, payload = _post(live_server, "/v1/hetero", HETERO_BODY)
    assert status == 200
    assert payload["op"] == "hetero"
    rec = payload["budget"]
    assert rec["avg_power"] <= 3000.0
    assert {c["pool"] for c in rec["pools"]} == {"fast", "slow"}
    assert payload["policy_gap"]["max_gap"] > 0.0


def test_hetero_in_batch_matches_single(live_server):
    _, single = _post(live_server, "/v1/hetero", HETERO_BODY)
    status, batch = _post(
        live_server, "/v1/batch",
        {"items": [dict(HETERO_BODY, op="hetero"),
                   {"op": "budget", "benchmark": "FT", "budget_w": 3000.0}]},
    )
    assert status == 200
    assert [item["ok"] for item in batch["items"]] == [True, True]
    assert batch["items"][0]["response"] == single


def test_healthz_reports_hetero_counters(live_server):
    with urllib.request.urlopen(
        f"{live_server}/healthz", timeout=10
    ) as response:
        payload = json.loads(response.read())
    assert "hetero" in payload["operations"]
    store = payload["caches"]["grid_store"]
    assert store["hetero_misses"] >= 1  # the queries above evaluated one
    assert store["hetero_hits"] >= 1  # ... and reused it

"""Heterogeneous federation shards: pooled ladders, routing, wire."""

import json

import pytest

from repro.api.schemas import response_from_dict
from repro.api.service import dispatch
from repro.api.types import FederateRequest
from repro.errors import ParameterError
from repro.federation.partition import hetero_ladder, mix_ladders
from repro.federation.registry import ShardRegistry, ShardSpec
from repro.federation.router import route_jobs
from repro.hetero.space import PoolSpec
from repro.optimize.schedule import Job

POOLED_SPEC = ShardSpec(
    name="mixed",
    cluster="systemg",
    power_envelope_w=4000.0,
    pools=(
        PoolSpec("fast", "systemg", (1, 2, 4, 8), (2.4, 2.8)),
        PoolSpec("slow", "dori", (1, 2, 4), (1.8,)),
    ),
)

JOBS = (Job("a", "FT", "W"), Job("b", "EP", "W"))


@pytest.fixture()
def registry():
    return ShardRegistry()


class TestRegistry:
    def test_pooled_shard_builds(self, registry):
        shard = registry.build(POOLED_SPEC)
        assert shard.is_heterogeneous
        assert len(shard.pool_clusters) == 2
        assert shard.pool_clusters[1].name.lower().startswith("dori")

    def test_homogeneous_shard_has_no_pools(self, registry):
        shard = registry.build(
            ShardSpec(name="plain", power_envelope_w=1000.0)
        )
        assert not shard.is_heterogeneous
        with pytest.raises(ParameterError, match="declares no pools"):
            shard.hetero_space_for("FT")

    def test_bad_pools_rejected_with_shard_context(self, registry):
        spec = ShardSpec(
            name="broken",
            power_envelope_w=1000.0,
            pools=(PoolSpec("a", "systemg", (0,)),),
        )
        with pytest.raises(ParameterError, match="shard 'broken'"):
            registry.build(spec)

    def test_hypothetical_machine_in_pool(self, registry):
        registry.register_hypothetical(
            "lowpower", base="systemg", cpu_power_scale=0.5,
        )
        spec = ShardSpec(
            name="whatif",
            power_envelope_w=2000.0,
            pools=(
                PoolSpec("eco", "lowpower", (2, 4), (2.8,)),
                PoolSpec("base", "systemg", (2,), (2.8,)),
            ),
        )
        shard = registry.build(spec)
        space = shard.hetero_space_for("FT", "W")
        assert space.pools[0].machines[0].delta_pc < (
            space.pools[1].machines[0].delta_pc
        )

    def test_space_memoised_per_workload(self, registry):
        shard = registry.build(POOLED_SPEC)
        assert shard.hetero_space_for("FT", "W") is shard.hetero_space_for(
            "FT", "W"
        )
        assert shard.hetero_space_for("FT", "W") is not (
            shard.hetero_space_for("EP", "W")
        )


class TestLadders:
    def test_hetero_ladder_is_pareto(self, registry):
        shard = registry.build(POOLED_SPEC)
        ladder = hetero_ladder(shard, "FT", "W")
        assert len(ladder) >= 2
        powers = [r.avg_power for r in ladder]
        tps = [r.tp for r in ladder]
        assert powers == sorted(powers)
        assert tps == sorted(tps, reverse=True)
        # rung p is the allocation's total processor count
        assert all(r.p >= 2 for r in ladder)  # one per pool minimum

    def test_mix_ladders_routes_to_hetero(self, registry):
        shard = registry.build(POOLED_SPEC)
        ladders = mix_ladders(shard, JOBS)
        assert len(ladders) == 2
        assert ladders[0] == hetero_ladder(shard, "FT", "W")

    def test_jobs_share_ladder_objects(self, registry):
        shard = registry.build(POOLED_SPEC)
        twin_jobs = (Job("x", "FT", "W"), Job("y", "FT", "W"))
        ladders = mix_ladders(shard, twin_jobs)
        assert ladders[0] is ladders[1]


class TestRouting:
    def test_mixed_site_places_every_job(self, registry):
        shards = [
            registry.build(POOLED_SPEC),
            registry.build(
                ShardSpec(
                    name="plain", cluster="systemg", nodes=16,
                    power_envelope_w=3000.0,
                )
            ),
        ]
        fed = route_jobs(shards, JOBS, budget_w=6000.0)
        placed = sorted(
            a.job for plan in fed.plans for a in plan.assignments
        )
        assert placed == ["a", "b"]
        assert fed.total_power_w <= 6000.0
        for plan, shard in zip(fed.plans, shards):
            assert plan.total_power_w <= plan.allocation_w + 1e-9

    def test_pooled_only_site_schedules(self, registry):
        shard = registry.build(POOLED_SPEC)
        fed = route_jobs([shard], JOBS, budget_w=4000.0)
        assert len(fed.plans[0].assignments) == 2


class TestWire:
    def test_federate_request_with_pools_round_trips(self):
        req = FederateRequest(
            budget_w=6000.0,
            shards=(POOLED_SPEC,),
            jobs=JOBS,
        )
        payload = json.loads(json.dumps(req.to_dict()))
        assert FederateRequest.from_dict(payload) == req
        assert payload["shards"][0]["pools"][0]["name"] == "fast"

    def test_federate_dispatch_with_pooled_shard(self):
        resp = dispatch(FederateRequest(
            budget_w=6000.0,
            shards=(
                POOLED_SPEC,
                ShardSpec(
                    name="plain", cluster="dori", nodes=4,
                    power_envelope_w=1200.0,
                ),
            ),
            jobs=JOBS,
        ))
        placed = sorted(
            a.job for plan in resp.plans for a in plan.assignments
        )
        assert placed == ["a", "b"]
        back = response_from_dict(json.loads(json.dumps(resp.to_dict())))
        assert back == resp

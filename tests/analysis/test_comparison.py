"""Metric comparison and divergence detection."""

import pytest

from repro.analysis.comparison import divergence_point, metric_comparison
from repro.core.model import IsoEnergyModel
from repro.errors import ParameterError
from repro.npb.ft import FtWorkload
from repro.paperdata import paper_model


@pytest.fixture()
def rows(machine):
    model = IsoEnergyModel(machine, FtWorkload(niter=5))
    return metric_comparison(model, n=2**22, p_values=[1, 4, 16, 64, 256])


def test_all_metrics_present(rows):
    assert [r.p for r in rows] == [1, 4, 16, 64, 256]
    for r in rows:
        assert 0 < r.perf_efficiency <= 1
        assert 0 < r.ee <= 1
        assert r.ere > 0


def test_p1_is_ideal_everywhere(rows):
    first = rows[0]
    assert first.perf_efficiency == pytest.approx(1.0)
    assert first.ee == pytest.approx(1.0)
    assert first.eef == pytest.approx(0.0)
    assert first.overhead_seconds == pytest.approx(0.0)
    assert first.attribution == "none"


def test_only_eef_attributes(rows):
    for r in rows[1:]:
        assert r.attribution in {
            "compute_overhead",
            "memory_overhead",
            "message_startup",
            "byte_transmission",
        }


def test_ere_equals_speedup_times_ee_over_p(machine):
    """ERE = speedup·(E1/Ep) — consistency across the metric family."""
    from repro.core.performance import speedup

    model = IsoEnergyModel(machine, FtWorkload(niter=5))
    n, p = 2**22, 16
    app = model.app_params(n, p)
    row = metric_comparison(model, n=n, p_values=[p])[0]
    assert row.ere == pytest.approx(speedup(machine, app, p) * row.ee)


def test_divergence_point_found_for_cg():
    """CG's energy and performance curves part ways at moderate p."""
    model, _ = paper_model("CG", klass="B")
    rows = metric_comparison(model, n=75000, p_values=[1, 4, 16, 64, 256])
    p_div = divergence_point(rows, tolerance=0.05)
    assert p_div is not None
    assert p_div <= 64


def test_divergence_none_for_ideal(machine):
    from repro.core.parameters import AppParams

    ideal = IsoEnergyModel(
        machine, lambda n, p: AppParams(alpha=0.9, wc=1e10, wm=1e8, p=p)
    )
    rows = metric_comparison(ideal, n=1e6, p_values=[1, 16, 256])
    assert divergence_point(rows) is None


def test_empty_inputs_rejected(machine):
    model = IsoEnergyModel(machine, FtWorkload())
    with pytest.raises(ParameterError):
        metric_comparison(model, n=1e6, p_values=[])
    with pytest.raises(ParameterError):
        divergence_point([], tolerance=0.0)

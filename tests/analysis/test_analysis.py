"""Surfaces, sweeps, and terminal reports."""

import numpy as np
import pytest

from repro.analysis.report import ascii_heatmap, ascii_table, format_si
from repro.analysis.surface import EESurface, ee_surface
from repro.analysis.sweep import (
    frequency_slice,
    parallelism_sweep,
    points_table,
    problem_size_slice,
)
from repro.core.model import IsoEnergyModel
from repro.errors import ParameterError
from repro.npb.ft import FtWorkload
from repro.units import GHZ


@pytest.fixture()
def model(machine):
    return IsoEnergyModel(machine, FtWorkload(niter=5), name="FT")


class TestEESurface:
    def test_pf_surface_shape(self, model):
        s = ee_surface(
            model,
            p_values=[1, 4, 16],
            f_values=[2.0 * GHZ, 2.8 * GHZ],
            n=2**22,
        )
        assert s.values.shape == (3, 2)
        assert s.x_name == "p" and s.y_name == "f"
        assert s.fixed == {"n": float(2**22)}

    def test_pn_surface(self, model):
        s = ee_surface(
            model, p_values=[4, 16], n_values=[2**20, 2**24], f=2.8 * GHZ
        )
        assert s.y_name == "n"
        # EE improves with n at fixed p for FT
        assert s.monotone_along_y(increasing=True)

    def test_ee_declines_with_p(self, model):
        s = ee_surface(
            model, p_values=[1, 4, 16, 64], n_values=[2**22], f=2.8 * GHZ
        )
        assert s.monotone_along_x(increasing=False)

    def test_at_and_column(self, model):
        s = ee_surface(
            model, p_values=[1, 4], f_values=[2.8 * GHZ], n=2**22
        )
        assert s.at(1.0, 2.8 * GHZ) == pytest.approx(1.0)
        col = s.column(2.8 * GHZ)
        assert [x for x, _ in col] == [1.0, 4.0]

    def test_rows_rounded(self, model):
        s = ee_surface(model, p_values=[4], f_values=[2.8 * GHZ], n=2**22)
        rows = s.rows()
        assert len(rows) == 1 and len(rows[0]) == 2

    def test_axis_validation(self, model):
        with pytest.raises(ParameterError):
            ee_surface(model, p_values=[1], n=2**20)  # no y-axis
        with pytest.raises(ParameterError):
            ee_surface(
                model,
                p_values=[1],
                f_values=[2.8 * GHZ],
                n_values=[2**20],
            )  # both axes

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            EESurface(
                x_name="p",
                y_name="f",
                x=(1.0,),
                y=(1.0, 2.0),
                values=np.zeros((2, 2)),
                fixed={},
            )


class TestSweeps:
    def test_parallelism_sweep(self, model):
        pts = parallelism_sweep(model, n=2**22, p_values=[1, 2, 4])
        assert [pt.p for pt in pts] == [1, 2, 4]

    def test_frequency_slice(self, model):
        pts = frequency_slice(
            model, n=2**22, p=8, f_values=[2.0 * GHZ, 2.8 * GHZ]
        )
        assert [pt.f for pt in pts] == [2.0 * GHZ, 2.8 * GHZ]

    def test_problem_size_slice(self, model):
        pts = problem_size_slice(model, p=8, n_values=[2**20, 2**22])
        assert [pt.n for pt in pts] == [2**20, 2**22]

    def test_points_table_shape(self, model):
        pts = parallelism_sweep(model, n=2**22, p_values=[1, 4])
        rows = points_table(pts)
        assert len(rows) == 2 and len(rows[0]) == 11

    def test_empty_axes_rejected(self, model):
        with pytest.raises(ParameterError):
            parallelism_sweep(model, n=2**22, p_values=[])


class TestReport:
    def test_format_si(self):
        assert format_si(3.36e7) == "33.6M"
        assert format_si(2.6e-6, "s") == "2.6µs"
        assert format_si(0) == "0"
        assert format_si(42.0) == "42"

    def test_ascii_table_alignment(self):
        out = ascii_table(["a", "bb"], [[1, 2.5], [10, 3.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_ascii_table_width_mismatch(self):
        with pytest.raises(ParameterError):
            ascii_table(["a"], [[1, 2]])

    def test_ascii_heatmap_renders(self):
        values = np.array([[0.0, 1.0], [0.5, 0.25]])
        out = ascii_heatmap(values, ["p1", "p2"], ["f1", "f2"], title="t")
        assert out.startswith("t")
        assert "scale:" in out
        assert "@" in out  # the max cell uses the darkest glyph

    def test_ascii_heatmap_shape_check(self):
        with pytest.raises(ParameterError):
            ascii_heatmap(np.zeros((2, 2)), ["a"], ["b", "c"])

"""Calibration: measured Θ1/Θ2 must recover the generating parameters."""

import pytest

from repro.core.parameters import AppParams
from repro.errors import CalibrationError
from repro.npb.ft import FtBenchmark
from repro.simmpi.engine import SimConfig, SimEngine
from repro.validation.calibration import (
    calibrate_machine_params,
    derive_machine_params,
    fit_workload_scaling,
    measure_app_params,
    split_overheads,
)


class TestDeriveMachineParams:
    def test_matches_hardware_description(self, systemg8):
        m = derive_machine_params(systemg8)
        node = systemg8.head
        assert m.tc == pytest.approx(node.cpu.tc())
        assert m.tm == pytest.approx(node.memory.tm)
        assert m.ts == pytest.approx(node.nic.ts)
        assert m.tw == pytest.approx(node.nic.tw)
        assert m.p_system_idle == pytest.approx(node.power.p_system_idle)
        assert m.delta_pc == pytest.approx(node.power.cpu.delta_p)

    def test_cpi_factor_applied(self, systemg8):
        m = derive_machine_params(systemg8, cpi_factor=2.8)
        assert m.tc == pytest.approx(2.8 * systemg8.head.cpu.tc())

    def test_frequency_projection(self, systemg8):
        from repro.units import GHZ

        m = derive_machine_params(systemg8, f=2.0 * GHZ)
        assert m.f == pytest.approx(2.0 * GHZ)
        assert m.delta_pc == pytest.approx(
            systemg8.head.power.cpu.delta_p * (2.0 / 2.8) ** 2
        )


class TestCalibrateMachineParams:
    def test_measured_close_to_spec(self, systemg8):
        cal = calibrate_machine_params(systemg8, seed=3)
        spec = derive_machine_params(systemg8)
        assert cal.params.tc == pytest.approx(spec.tc, rel=0.10)
        assert cal.params.tm == pytest.approx(spec.tm, rel=0.10)
        assert cal.params.ts == pytest.approx(spec.ts, rel=0.25)
        assert cal.params.tw == pytest.approx(spec.tw, rel=0.10)
        assert cal.params.delta_pc == pytest.approx(spec.delta_pc, rel=0.10)
        assert cal.params.delta_pm == pytest.approx(spec.delta_pm, rel=0.15)
        assert cal.params.p_system_idle == pytest.approx(
            spec.p_system_idle, rel=0.05
        )

    def test_idle_floors_exact(self, systemg8):
        cal = calibrate_machine_params(systemg8, seed=3)
        node = systemg8.head
        assert cal.idle_power["cpu"] == pytest.approx(node.power.cpu.p_idle)
        assert cal.idle_power["motherboard"] == pytest.approx(node.power.others)


class TestMeasureAppParams:
    def test_counters_become_theta2(self, systemg8):
        bench, _ = FtBenchmark.for_class("S", niter=2)
        n = bench.n_for_class("S")
        res = SimEngine(systemg8, SimConfig(alpha=bench.alpha)).run(
            bench.make_program(n, 4), size=4
        )
        ap = measure_app_params(res, alpha=bench.alpha)
        model = bench.app_params(n, 4)
        assert ap.wc == pytest.approx(
            model.total_instructions * bench.bias.compute_scale, rel=1e-6
        )
        assert ap.m_messages == model.m_messages

    def test_split_overheads(self):
        seq = AppParams(alpha=0.9, wc=1e9, wm=1e7, p=1)
        par = AppParams(alpha=0.9, wc=1.1e9, wm=1.2e7, m_messages=10, b_bytes=100, p=4)
        split = split_overheads(seq, par)
        assert split.wc == pytest.approx(1e9)
        assert split.wco == pytest.approx(0.1e9)
        assert split.wmo == pytest.approx(0.2e7)
        assert split.m_messages == 10

    def test_split_rejects_shrinking_work(self):
        seq = AppParams(alpha=0.9, wc=1e9, wm=1e7, p=1)
        par = AppParams(alpha=0.9, wc=0.5e9, wm=1e7, p=4)
        with pytest.raises(CalibrationError, match="less work"):
            split_overheads(seq, par)


class TestFitWorkloadScaling:
    def test_linear_recovers_ep_coefficient(self):
        ns = [1e6, 4e6, 1.6e7]
        values = [109.4 * n for n in ns]
        assert fit_workload_scaling(ns, values, "linear") == pytest.approx(109.4)

    def test_nlogn_recovers_ft_coefficient(self):
        import math

        ns = [2**18, 2**20, 2**22]
        values = [5.5 * n * math.log2(n) for n in ns]
        assert fit_workload_scaling(ns, values, "nlogn") == pytest.approx(5.5)

    def test_unknown_form_rejected(self):
        with pytest.raises(CalibrationError):
            fit_workload_scaling([1.0], [1.0], "quadratic")

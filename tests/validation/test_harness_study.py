"""Validation harness and studies: the Figure 3/4/2 machinery."""

import pytest

from repro.errors import ConfigurationError
from repro.validation.harness import ValidationResult, validate, validate_suite
from repro.validation.study import (
    efficiency_study,
    error_by_parallelism,
    mean_error_table,
)


class TestValidate:
    def test_single_experiment_dori(self, dori4):
        r = validate(dori4, "FT", klass="S", p=4, seed=0)
        assert r.benchmark == "FT"
        assert r.measured_j > 0 and r.predicted_j > 0
        assert r.abs_error_pct < 20.0
        assert r.messages > 0

    def test_error_sign_convention(self):
        r = ValidationResult(
            benchmark="X", n=1, p=1, predicted_j=110.0, measured_j=100.0,
            sim_seconds=1, model_seconds=1, messages=0, bytes=0,
        )
        assert r.error == pytest.approx(0.10)
        assert r.abs_error_pct == pytest.approx(10.0)

    def test_row_format(self):
        r = ValidationResult(
            benchmark="X", n=1, p=2, predicted_j=110.0, measured_j=100.0,
            sim_seconds=1, model_seconds=1, messages=0, bytes=0,
        )
        assert r.row() == ("X", 2, 100.0, 110.0, 10.0)

    def test_seed_changes_measurement_not_prediction(self, dori4):
        r1 = validate(dori4, "EP", klass="S", p=4, seed=1)
        r2 = validate(dori4, "EP", klass="S", p=4, seed=2)
        assert r1.predicted_j == pytest.approx(r2.predicted_j)
        assert r1.measured_j != pytest.approx(r2.measured_j, rel=1e-9)

    def test_p_beyond_cluster_rejected(self, dori4):
        with pytest.raises(ConfigurationError):
            validate(dori4, "EP", klass="S", p=16)


class TestValidateSuite:
    def test_suite_runs_all(self, dori4):
        results = validate_suite(
            dori4, ("EP", "IS"), klass="S", p=4, seed=0
        )
        assert [r.benchmark for r in results] == ["EP", "IS"]

    def test_niter_overrides(self, dori4):
        results = validate_suite(
            dori4, ("LU",), klass="S", p=2, niter_overrides={"LU": 3}
        )
        assert results[0].messages > 0


class TestErrorByParallelism:
    def test_sweep_collects_all_points(self, systemg8):
        results = error_by_parallelism(
            systemg8, "EP", p_values=(1, 2, 4), klass="S"
        )
        assert [r.p for r in results] == [1, 2, 4]

    def test_oversized_p_rejected(self, dori4):
        with pytest.raises(ConfigurationError, match="exceeds"):
            error_by_parallelism(dori4, "EP", p_values=(16,), klass="S")

    def test_mean_error_table(self):
        r = lambda e: ValidationResult(  # noqa: E731
            benchmark="X", n=1, p=1, predicted_j=100 + e, measured_j=100.0,
            sim_seconds=1, model_seconds=1, messages=0, bytes=0,
        )
        rows = mean_error_table({"X": [r(5.0), r(-3.0)]})
        assert rows == [("X", pytest.approx(4.0))]

    def test_mean_error_table_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_error_table({"X": []})


class TestEfficiencyStudy:
    def test_curves_start_at_one(self, systemg8):
        points = efficiency_study(
            systemg8, "FT", p_values=(1, 2, 4), klass="S", niter=2, seed=0
        )
        first = points[0]
        assert first.p == 1
        assert first.measured_perf_eff == pytest.approx(1.0)
        assert first.measured_energy_eff == pytest.approx(1.0)
        assert first.model_energy_eff == pytest.approx(1.0)

    def test_efficiency_declines(self, systemg8):
        points = efficiency_study(
            systemg8, "FT", p_values=(1, 4, 8), klass="S", niter=2, seed=0
        )
        assert points[-1].measured_energy_eff < 1.0
        assert points[-1].model_energy_eff < 1.0

    def test_p1_implied(self, systemg8):
        points = efficiency_study(
            systemg8, "EP", p_values=(2,), klass="S", seed=0
        )
        assert [pt.p for pt in points] == [1, 2]

"""Small-scale calibration → large-scale prediction (§V-A)."""

import pytest

from repro.cluster import system_g
from repro.errors import CalibrationError
from repro.npb.workloads import benchmark_for
from repro.validation.projection import (
    ProjectedWorkload,
    fit_projected_workload,
    verify_projection,
)


@pytest.fixture(scope="module")
def g32():
    return system_g(32)


@pytest.fixture(scope="module")
def ft_projection(g32):
    bench, n = benchmark_for("FT", "W", niter=2)
    projected = fit_projected_workload(
        g32, bench, n, calibration_ps=(1, 2, 4, 8), seed=1
    )
    return bench, n, projected


class TestFitting:
    def test_base_workload_close_to_analytic(self, ft_projection):
        bench, n, projected = ft_projection
        analytic = bench.app_params(n, 1)
        # fitted base includes kernel bias and noise; within a few %
        assert projected.wc_base == pytest.approx(
            analytic.wc * bench.bias.compute_scale, rel=0.05
        )

    def test_projection_produces_valid_theta2(self, ft_projection):
        _, n, projected = ft_projection
        for p in (16, 64, 256):
            ap = projected.params(n, p)
            assert ap.wc > 0 and ap.m_messages > 0

    def test_overheads_grow_from_calibration_range(self, ft_projection):
        _, n, projected = ft_projection
        small = projected.params(n, 8)
        large = projected.params(n, 128)
        assert large.wco >= small.wco
        assert large.m_messages > small.m_messages

    def test_problem_size_rescaling(self, ft_projection):
        _, n, projected = ft_projection
        ap1 = projected.params(n, 16)
        ap2 = projected.params(2 * n, 16)
        assert ap2.wc == pytest.approx(2 * ap1.wc)

    def test_requires_p1_reference(self, g32):
        bench, n = benchmark_for("FT", "S", niter=1)
        with pytest.raises(CalibrationError, match="p=1 reference"):
            fit_projected_workload(g32, bench, n, calibration_ps=(2, 4, 8))

    def test_requires_three_points(self, g32):
        bench, n = benchmark_for("FT", "S", niter=1)
        with pytest.raises(CalibrationError, match="3 calibration"):
            fit_projected_workload(g32, bench, n, calibration_ps=(1, 2))

    def test_unknown_form_rejected(self):
        with pytest.raises(CalibrationError):
            ProjectedWorkload._g("cubic", 4)


class TestProjectionAccuracy:
    def test_predicts_unseen_scales_within_band(self, g32, ft_projection):
        """Calibrated at p ≤ 8, the model must predict p = 16/32 energy."""
        bench, n, projected = ft_projection
        reports = verify_projection(
            g32, bench, n, projected, target_ps=(16, 32), seed=50
        )
        for r in reports:
            assert r.abs_error_pct < 12.0, (r.p, r.abs_error_pct)

    def test_projection_beats_blind_extrapolation(self, g32, ft_projection):
        """The fitted model should be at least as good at p=32 as at p=16
        is catastrophic — i.e. error must not explode with distance."""
        bench, n, projected = ft_projection
        reports = verify_projection(
            g32, bench, n, projected, target_ps=(16, 32), seed=51
        )
        errs = {r.p: r.abs_error_pct for r in reports}
        assert errs[32] < 3 * max(errs[16], 2.0)

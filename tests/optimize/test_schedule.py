"""Cluster-level DVFS scheduling under a shared power budget."""

import pytest

from repro.errors import ConfigurationError, ParameterError
from repro.optimize.schedule import Job, schedule_jobs

QUEUE = [
    Job("fourier", "FT", "W"),
    Job("conjgrad", "CG", "W"),
    Job("montecarlo", "EP", "W"),
]


@pytest.fixture(scope="module")
def schedule():
    return schedule_jobs(
        QUEUE, cluster="systemg", power_budget=6_000.0, nodes=32
    )


class TestFeasibility:
    def test_budget_respected(self, schedule):
        assert schedule.total_power <= schedule.power_budget
        assert schedule.headroom_w >= 0.0

    def test_every_job_assigned(self, schedule):
        assert [a.job for a in schedule.assignments] == [
            j.name for j in QUEUE
        ]
        for a in schedule.assignments:
            assert a.p >= 1
            assert a.tp > 0 and a.ep > 0
            assert 0 < a.ee <= 1
            assert 0 <= a.rung < a.rungs_available

    def test_aggregates(self, schedule):
        assert schedule.makespan == pytest.approx(
            max(a.tp for a in schedule.assignments)
        )
        assert schedule.total_energy == pytest.approx(
            sum(a.ep for a in schedule.assignments)
        )
        rows = schedule.rows()
        assert len(rows) == len(QUEUE)
        assert rows[0][0] == "fourier"

    def test_infeasible_budget_raises(self):
        with pytest.raises(ParameterError, match="infeasible"):
            schedule_jobs(
                QUEUE, cluster="systemg", power_budget=50.0, nodes=32
            )


class TestGreedyClimb:
    def test_more_budget_never_hurts_makespan(self):
        tight = schedule_jobs(
            QUEUE, cluster="systemg", power_budget=1_500.0, nodes=32
        )
        loose = schedule_jobs(
            QUEUE, cluster="systemg", power_budget=12_000.0, nodes=32
        )
        assert loose.makespan <= tight.makespan

    def test_slack_budget_exhausts_ladders_or_headroom(self):
        sched = schedule_jobs(
            QUEUE, cluster="systemg", power_budget=1e9, nodes=32
        )
        # with unlimited watts every job tops out its ladder
        for a in sched.assignments:
            assert a.rung == a.rungs_available - 1

    def test_max_nodes_cap_respected(self):
        sched = schedule_jobs(
            QUEUE, cluster="systemg", power_budget=1e9, nodes=32,
            max_nodes=16,
        )
        assert sum(a.p for a in sched.assignments) <= 16


class TestConfiguration:
    def test_dori_preset_works(self):
        sched = schedule_jobs(
            [Job("solo", "EP", "S")], cluster="dori",
            power_budget=2_000.0, nodes=8,
        )
        assert sched.cluster == "Dori"
        assert sched.assignments[0].benchmark == "EP"

    def test_explicit_axes(self):
        sched = schedule_jobs(
            [Job("solo", "FT", "W")], cluster="systemg",
            power_budget=5_000.0, p_values=[2, 4],
            f_values=[2.0e9, 2.8e9],
        )
        assert sched.assignments[0].p in (2, 4)

    def test_unknown_cluster_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown cluster"):
            schedule_jobs(QUEUE, cluster="summit", power_budget=1_000.0)

    def test_empty_queue_rejected(self):
        with pytest.raises(ParameterError, match="empty"):
            schedule_jobs([], power_budget=1_000.0)

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ParameterError):
            schedule_jobs(QUEUE, power_budget=0.0)

"""Cluster-level DVFS scheduling under a shared power budget."""

import pytest

from repro.errors import ConfigurationError, InfeasibleJobsError, ParameterError
from repro.optimize.schedule import Job, schedule_jobs

QUEUE = [
    Job("fourier", "FT", "W"),
    Job("conjgrad", "CG", "W"),
    Job("montecarlo", "EP", "W"),
]


@pytest.fixture(scope="module")
def schedule():
    return schedule_jobs(
        QUEUE, cluster="systemg", power_budget=6_000.0, nodes=32
    )


class TestFeasibility:
    def test_budget_respected(self, schedule):
        assert schedule.total_power <= schedule.power_budget
        assert schedule.headroom_w >= 0.0

    def test_every_job_assigned(self, schedule):
        assert [a.job for a in schedule.assignments] == [
            j.name for j in QUEUE
        ]
        for a in schedule.assignments:
            assert a.p >= 1
            assert a.tp > 0 and a.ep > 0
            assert 0 < a.ee <= 1
            assert 0 <= a.rung < a.rungs_available

    def test_aggregates(self, schedule):
        assert schedule.makespan == pytest.approx(
            max(a.tp for a in schedule.assignments)
        )
        assert schedule.total_energy == pytest.approx(
            sum(a.ep for a in schedule.assignments)
        )
        rows = schedule.rows()
        assert len(rows) == len(QUEUE)
        assert rows[0][0] == "fourier"

    def test_infeasible_budget_raises(self):
        with pytest.raises(ParameterError, match="infeasible"):
            schedule_jobs(
                QUEUE, cluster="systemg", power_budget=50.0, nodes=32
            )


class TestGreedyClimb:
    def test_more_budget_never_hurts_makespan(self):
        tight = schedule_jobs(
            QUEUE, cluster="systemg", power_budget=1_500.0, nodes=32
        )
        loose = schedule_jobs(
            QUEUE, cluster="systemg", power_budget=12_000.0, nodes=32
        )
        assert loose.makespan <= tight.makespan

    def test_slack_budget_exhausts_ladders_or_headroom(self):
        sched = schedule_jobs(
            QUEUE, cluster="systemg", power_budget=1e9, nodes=32
        )
        # with unlimited watts every job tops out its ladder
        for a in sched.assignments:
            assert a.rung == a.rungs_available - 1

    def test_max_nodes_cap_respected(self):
        sched = schedule_jobs(
            QUEUE, cluster="systemg", power_budget=1e9, nodes=32,
            max_nodes=16,
        )
        assert sum(a.p for a in sched.assignments) <= 16


class TestEnergyPolicy:
    def test_energy_policy_never_exceeds_floor_state_energy(self):
        """Upgrades are only taken when they *reduce* total energy."""
        floor_state = schedule_jobs(
            QUEUE, cluster="systemg", power_budget=1_500.0, nodes=32,
            policy="energy",
        )
        slack = schedule_jobs(
            QUEUE, cluster="systemg", power_budget=1e9, nodes=32,
            policy="energy",
        )
        assert slack.total_energy <= floor_state.total_energy + 1e-9
        assert slack.policy == "energy"

    def test_energy_beats_makespan_on_total_energy(self):
        budget = 8_000.0
        greedy = schedule_jobs(
            QUEUE, cluster="systemg", power_budget=budget, nodes=32,
        )
        frugal = schedule_jobs(
            QUEUE, cluster="systemg", power_budget=budget, nodes=32,
            policy="energy",
        )
        assert frugal.total_energy <= greedy.total_energy + 1e-9

    def test_energy_policy_respects_the_budget(self):
        sched = schedule_jobs(
            QUEUE, cluster="systemg", power_budget=2_000.0, nodes=32,
            policy="energy",
        )
        assert sched.total_power <= 2_000.0

    def test_more_budget_never_increases_energy(self):
        tight = schedule_jobs(
            QUEUE, cluster="systemg", power_budget=1_500.0, nodes=32,
            policy="energy",
        )
        loose = schedule_jobs(
            QUEUE, cluster="systemg", power_budget=10_000.0, nodes=32,
            policy="energy",
        )
        assert loose.total_energy <= tight.total_energy + 1e-9


class TestEEFloorPolicy:
    def test_every_placement_meets_the_floor(self):
        sched = schedule_jobs(
            QUEUE, cluster="systemg", power_budget=8_000.0, nodes=32,
            policy="ee_floor", ee_floor=0.8,
        )
        for a in sched.assignments:
            assert a.ee >= 0.8
        assert sched.policy == "ee_floor"

    def test_unreachable_floor_lists_the_jobs(self):
        with pytest.raises(InfeasibleJobsError) as err:
            schedule_jobs(
                QUEUE, cluster="systemg", power_budget=8_000.0, nodes=32,
                policy="ee_floor", ee_floor=1.5,  # EE <= 1 by construction
            )
        names = [name for name, _ in err.value.jobs]
        assert "fourier" in names

    def test_floor_value_required(self):
        with pytest.raises(ParameterError, match="requires an ee_floor"):
            schedule_jobs(
                QUEUE, cluster="systemg", power_budget=8_000.0,
                policy="ee_floor",
            )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ParameterError, match="unknown scheduling policy"):
            schedule_jobs(
                QUEUE, cluster="systemg", power_budget=8_000.0,
                policy="fifo",
            )


class TestPrebuiltLadders:
    def test_prebuilt_ladders_reproduce_the_derived_schedule(self):
        """The federation router's fast path must change nothing."""
        from repro.cluster.presets import cluster_preset
        from repro.optimize.schedule import power_ladder
        from repro.paperdata import paper_model

        machine_room = cluster_preset("systemg", 32)
        ladders = []
        for job in QUEUE:
            model, n = paper_model(
                job.benchmark, job.klass, cluster=machine_room,
            )
            ladders.append(power_ladder(
                model, n, [1, 2, 4, 8, 16, 32],
                machine_room.available_frequencies,
            ))
        derived = schedule_jobs(
            QUEUE, cluster="systemg", power_budget=6_000.0, nodes=32,
        )
        fast = schedule_jobs(
            QUEUE, cluster="systemg", power_budget=6_000.0, nodes=32,
            ladders=ladders,
        )
        assert fast.assignments == derived.assignments

    def test_ladder_count_mismatch_rejected(self):
        with pytest.raises(ParameterError, match="pre-built ladders"):
            schedule_jobs(
                QUEUE, cluster="systemg", power_budget=6_000.0,
                ladders=[[]],
            )


class TestInfeasibleJobListing:
    def test_individually_hopeless_jobs_are_named(self):
        with pytest.raises(InfeasibleJobsError) as err:
            schedule_jobs(
                QUEUE, cluster="systemg", power_budget=50.0, nodes=32
            )
        assert err.value.jobs
        for name, floor_w in err.value.jobs:
            assert floor_w > 50.0
            assert name in [j.name for j in QUEUE]

    def test_structured_error_is_a_parameter_error(self):
        assert issubclass(InfeasibleJobsError, ParameterError)

    def test_aggregate_infeasibility_still_reported(self):
        """No single job exceeds the budget, but together they do."""
        with pytest.raises(InfeasibleJobsError) as err:
            schedule_jobs(
                QUEUE, cluster="systemg", power_budget=50.0, nodes=32
            )
        floor = dict(err.value.jobs)["fourier"]
        clones = [Job(f"ft{i}", "FT", "W") for i in range(3)]
        with pytest.raises(ParameterError, match="together"):
            schedule_jobs(
                clones, cluster="systemg", power_budget=floor * 1.5,
                nodes=32,
            )


class TestConfiguration:
    def test_dori_preset_works(self):
        sched = schedule_jobs(
            [Job("solo", "EP", "S")], cluster="dori",
            power_budget=2_000.0, nodes=8,
        )
        assert sched.cluster == "Dori"
        assert sched.assignments[0].benchmark == "EP"

    def test_explicit_axes(self):
        sched = schedule_jobs(
            [Job("solo", "FT", "W")], cluster="systemg",
            power_budget=5_000.0, p_values=[2, 4],
            f_values=[2.0e9, 2.8e9],
        )
        assert sched.assignments[0].p in (2, 4)

    def test_unknown_cluster_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown cluster"):
            schedule_jobs(QUEUE, cluster="summit", power_budget=1_000.0)

    def test_empty_queue_rejected(self):
        with pytest.raises(ParameterError, match="empty"):
            schedule_jobs([], power_budget=1_000.0)

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ParameterError):
            schedule_jobs(QUEUE, power_budget=0.0)

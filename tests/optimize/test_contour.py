"""Iso-EE contour tracing: round-trips, bracketing, unreachable targets."""

import pytest

from repro.errors import ParameterError
from repro.optimize.contour import (
    iso_ee_curve,
    iso_ee_curve_scalar,
    solve_f_for_ee,
    solve_n_for_ee,
)
from repro.paperdata import paper_model
from repro.units import GHZ


@pytest.fixture(scope="module")
def ft():
    return paper_model("FT", klass="B")


@pytest.fixture(scope="module")
def cg():
    return paper_model("CG", klass="B")


class TestNCurve:
    def test_round_trip_within_one_percent(self, ft):
        """Acceptance: evaluating n(p) reproduces the target EE to 1%."""
        model, n = ft
        target = 0.8
        curve = iso_ee_curve(
            model, target_ee=target, p_values=[2, 4, 8, 16, 32, 64], n_seed=n
        )
        assert all(c.converged for c in curve)
        for c in curve:
            ee = model.ee(n=c.value, p=c.p)
            assert abs(ee - target) / target < 0.01, (c.p, ee)

    def test_curve_grows_with_p(self, ft):
        """Holding EE while scaling out demands a growing problem."""
        model, n = ft
        curve = iso_ee_curve(
            model, target_ee=0.75, p_values=[2, 4, 8, 16, 32], n_seed=n
        )
        sizes = [c.value for c in curve]
        assert sizes == sorted(sizes)

    def test_p1_trivially_converges(self, ft):
        model, n = ft
        pt = solve_n_for_ee(model, target_ee=0.9, p=1, n_seed=n)
        assert pt.converged and pt.ee == 1.0

    def test_cg_round_trip(self, cg):
        model, n = cg
        for p in (4, 16, 64):
            pt = solve_n_for_ee(model, target_ee=0.8, p=p, n_seed=n)
            assert pt.converged
            assert model.ee(n=pt.value, p=p) == pytest.approx(0.8, rel=0.01)

    def test_cg_asymptote_is_unreachable(self, cg):
        """CG's per-p overheads never amortize: EE(n→∞, p=64) < 0.85."""
        model, n = cg
        pt = solve_n_for_ee(model, target_ee=0.85, p=64, n_seed=n)
        assert not pt.converged
        assert pt.ee < 0.85

    def test_unreachable_target_flagged_not_raised(self, ft):
        """EP-like: EE floors near 1; a low target is below the range."""
        model, n = paper_model("EP", klass="B")
        pt = solve_n_for_ee(model, target_ee=0.5, p=16, n_seed=n)
        assert not pt.converged
        assert pt.ee > 0.9  # EP never gets anywhere near EE = 0.5

    def test_bad_targets_rejected(self, ft):
        model, n = ft
        for bad in (0.0, 1.0, -0.2, 1.7):
            with pytest.raises(ParameterError):
                solve_n_for_ee(model, target_ee=bad, p=4, n_seed=n)
        with pytest.raises(ParameterError):
            solve_n_for_ee(model, target_ee=0.8, p=4, n_seed=-1.0)


class TestFCurve:
    def test_solve_f_round_trip(self, cg):
        """CG's EE rises with f (Fig. 9) — a mid target is bracketed."""
        model, n = cg
        p = 32
        lo, hi = 1.6 * GHZ, 2.8 * GHZ
        ee_lo, ee_hi = model.ee(n=n, p=p, f=lo), model.ee(n=n, p=p, f=hi)
        target = 0.5 * (ee_lo + ee_hi)
        pt = solve_f_for_ee(
            model, target_ee=target, p=p, n=n, f_window=(lo, hi)
        )
        assert pt.converged
        assert lo <= pt.value <= hi
        assert model.ee(n=n, p=p, f=pt.value) == pytest.approx(
            target, rel=0.01
        )

    def test_unbracketed_target_flagged(self, cg):
        model, n = cg
        pt = solve_f_for_ee(
            model, target_ee=0.05, p=32, n=n,
            f_window=(1.6 * GHZ, 2.8 * GHZ),
        )
        assert not pt.converged

    def test_bad_window_rejected(self, cg):
        model, n = cg
        with pytest.raises(ParameterError):
            solve_f_for_ee(
                model, target_ee=0.8, p=4, n=n, f_window=(2.8 * GHZ, 1.6 * GHZ)
            )


class TestCurveApi:
    def test_f_axis_curve(self, cg):
        model, n = cg
        curve = iso_ee_curve(
            model, target_ee=0.86, p_values=[16, 32], axis="f", n=n,
            f_window=(1.6 * GHZ, 2.8 * GHZ),
        )
        assert [c.p for c in curve] == [16, 32]
        assert all(c.axis == "f" for c in curve)

    def test_f_axis_needs_n_and_window(self, cg):
        model, n = cg
        with pytest.raises(ParameterError):
            iso_ee_curve(model, target_ee=0.8, p_values=[4], axis="f")
        with pytest.raises(ParameterError):
            iso_ee_curve(model, target_ee=0.8, p_values=[4], axis="f", n=n)

    def test_unknown_axis_and_empty_p(self, ft):
        model, n = ft
        with pytest.raises(ParameterError):
            iso_ee_curve(model, target_ee=0.8, p_values=[4], axis="z")
        with pytest.raises(ParameterError):
            iso_ee_curve(model, target_ee=0.8, p_values=[])


class TestBatchedBisection:
    """The vectorized n(p) solver vs the scalar per-p reference."""

    def test_matches_scalar_path_on_ft(self, ft):
        model, n = ft
        ps = [1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144]
        batched = iso_ee_curve(
            model, target_ee=0.8, p_values=ps, n_seed=n, rel_tol=1e-8
        )
        reference = iso_ee_curve_scalar(
            model, target_ee=0.8, p_values=ps, n_seed=n, rel_tol=1e-8
        )
        for got, want in zip(batched, reference):
            assert got.p == want.p and got.converged == want.converged
            assert got.ee == pytest.approx(want.ee, abs=1e-6)

    def test_matches_scalar_on_cg_powers_of_two(self, cg):
        model, n = cg
        ps = [1, 2, 4, 8, 16, 32, 64]
        batched = iso_ee_curve(model, target_ee=0.85, p_values=ps, n_seed=n)
        reference = iso_ee_curve_scalar(
            model, target_ee=0.85, p_values=ps, n_seed=n
        )
        for got, want in zip(batched, reference):
            assert got.converged == want.converged
            assert got.ee == pytest.approx(want.ee, abs=1e-6)

    def test_unreachable_target_flags_match_scalar(self, ft):
        model, n = ft
        batched = iso_ee_curve(
            model, target_ee=0.999, p_values=[1, 64, 128], n_seed=n
        )
        reference = iso_ee_curve_scalar(
            model, target_ee=0.999, p_values=[1, 64, 128], n_seed=n
        )
        for got, want in zip(batched, reference):
            assert got.converged == want.converged
            assert got.value == pytest.approx(want.value, rel=1e-9)

    def test_floor_clamp_matches_scalar(self, ft):
        """Low targets drive n to the floor on both paths identically."""
        model, n = ft
        batched = iso_ee_curve(model, target_ee=0.1, p_values=[1, 4, 16],
                               n_seed=n)
        reference = iso_ee_curve_scalar(
            model, target_ee=0.1, p_values=[1, 4, 16], n_seed=n
        )
        for got, want in zip(batched, reference):
            assert got.converged == want.converged
            assert got.ee == pytest.approx(want.ee, abs=1e-6)

    def test_fallback_workload_without_params_batch(self, ft):
        """Callable workloads (no params_batch) ride the scalar Θ2 loop."""
        from repro.core.model import IsoEnergyModel
        from repro.npb.ft import FtWorkload

        wl = FtWorkload()
        model = IsoEnergyModel(
            ft[0].machine, lambda n, p: wl.params(n, p), name="callable"
        )
        _, n = ft
        batched = iso_ee_curve(model, target_ee=0.8, p_values=[1, 4, 16],
                               n_seed=n)
        reference = iso_ee_curve_scalar(
            model, target_ee=0.8, p_values=[1, 4, 16], n_seed=n
        )
        for got, want in zip(batched, reference):
            assert got.converged == want.converged
            assert got.ee == pytest.approx(want.ee, abs=1e-6)

    def test_converged_points_hold_the_target(self, ft):
        model, n = ft
        for point in iso_ee_curve(model, target_ee=0.75,
                                  p_values=[1, 2, 4, 8, 16], n_seed=n):
            if point.p > 1:
                assert point.converged
                assert model.ee(n=point.value, p=point.p) == pytest.approx(
                    0.75, abs=1e-5
                )

    def test_p_one_lane_is_the_seed(self, ft):
        model, n = ft
        point = iso_ee_curve(model, target_ee=0.8, p_values=[1], n_seed=n)[0]
        assert point.p == 1 and point.value == n and point.ee == 1.0
        assert point.converged

"""Constrained optimizers: budget caps, deadlines, Pareto dominance."""

import pytest

from repro.errors import ParameterError
from repro.optimize.budget import (
    max_speedup_under_power,
    min_energy_under_deadline,
    pareto_frontier,
)
from repro.optimize.grid import evaluate_grid
from repro.paperdata import paper_model
from repro.units import GHZ

P_VALUES = [1, 2, 4, 8, 16, 32, 64]
F_VALUES = [1.6 * GHZ, 2.0 * GHZ, 2.4 * GHZ, 2.8 * GHZ]


@pytest.fixture(scope="module")
def ft():
    return paper_model("FT", klass="B")


@pytest.fixture(scope="module")
def all_points(ft):
    # same evaluation path as the solvers, so brute-force comparisons are
    # bit-exact (scalar_grid agrees only to ~1e-15, which breaks dominance
    # tie-checks)
    model, n = ft
    return evaluate_grid(
        model, p_values=P_VALUES, f_values=F_VALUES, n_values=[n]
    ).points()


class TestPowerBudget:
    def test_matches_brute_force(self, ft, all_points):
        model, n = ft
        budget = 3_000.0
        rec = max_speedup_under_power(
            model, n=n, budget_w=budget, p_values=P_VALUES, f_values=F_VALUES
        )
        feasible = [p for p in all_points if p.ep / p.tp <= budget]
        best = min(feasible, key=lambda p: p.tp)
        assert (rec.p, rec.f) == (best.p, best.f)
        assert rec.tp == pytest.approx(best.tp, rel=1e-12)
        assert rec.avg_power <= budget
        assert rec.feasible_count == len(feasible)

    def test_acceptance_scenario_is_feasible(self, ft):
        """The ISSUE's CLI scenario: FT.B on SystemG under 3 kW."""
        model, n = ft
        rec = max_speedup_under_power(
            model, n=n, budget_w=3_000.0, p_values=P_VALUES, f_values=F_VALUES
        )
        assert rec.p > 1
        assert 0 < rec.ee < 1
        assert rec.tp > 0 and rec.ep > 0

    def test_tighter_budget_never_faster(self, ft):
        model, n = ft
        loose = max_speedup_under_power(
            model, n=n, budget_w=10_000.0, p_values=P_VALUES, f_values=F_VALUES
        )
        tight = max_speedup_under_power(
            model, n=n, budget_w=1_000.0, p_values=P_VALUES, f_values=F_VALUES
        )
        assert tight.tp >= loose.tp

    def test_infeasible_budget_raises_with_minimum(self, ft):
        model, n = ft
        with pytest.raises(ParameterError, match="frugalest"):
            max_speedup_under_power(
                model, n=n, budget_w=10.0, p_values=P_VALUES,
                f_values=F_VALUES,
            )

    def test_nonpositive_budget_rejected(self, ft):
        model, n = ft
        with pytest.raises(ParameterError):
            max_speedup_under_power(
                model, n=n, budget_w=0.0, p_values=P_VALUES
            )


class TestDeadline:
    def test_matches_brute_force(self, ft, all_points):
        model, n = ft
        deadline = 30.0
        rec = min_energy_under_deadline(
            model, n=n, t_max=deadline, p_values=P_VALUES, f_values=F_VALUES
        )
        feasible = [p for p in all_points if p.tp <= deadline]
        best = min(feasible, key=lambda p: p.ep)
        assert (rec.p, rec.f) == (best.p, best.f)
        assert rec.tp <= deadline

    def test_impossible_deadline_raises(self, ft):
        model, n = ft
        with pytest.raises(ParameterError, match="deadline"):
            min_energy_under_deadline(
                model, n=n, t_max=1e-6, p_values=P_VALUES, f_values=F_VALUES
            )

    def test_nonpositive_deadline_rejected(self, ft):
        model, n = ft
        with pytest.raises(ParameterError):
            min_energy_under_deadline(
                model, n=n, t_max=-5.0, p_values=P_VALUES
            )


class TestParetoFrontier:
    def test_sorted_and_trading(self, ft):
        model, n = ft
        frontier = pareto_frontier(
            model, n=n, p_values=P_VALUES, f_values=F_VALUES
        )
        tps = [r.tp for r in frontier]
        eps = [r.ep for r in frontier]
        assert tps == sorted(tps)
        assert eps == sorted(eps, reverse=True)

    def test_no_dominated_point_survives(self, ft, all_points):
        model, n = ft
        frontier = pareto_frontier(
            model, n=n, p_values=P_VALUES, f_values=F_VALUES
        )
        for r in frontier:
            dominated = any(
                q.tp <= r.tp and q.ep <= r.ep and (q.tp, q.ep) != (r.tp, r.ep)
                for q in all_points
            )
            assert not dominated, (r.p, r.f)

    def test_every_non_dominated_point_present(self, ft, all_points):
        model, n = ft
        frontier = pareto_frontier(
            model, n=n, p_values=P_VALUES, f_values=F_VALUES
        )
        keys = {(r.p, r.f) for r in frontier}
        for q in all_points:
            dominated = any(
                o.tp <= q.tp and o.ep <= q.ep and (o.tp, o.ep) != (q.tp, q.ep)
                for o in all_points
            )
            if not dominated:
                assert (q.p, q.f) in keys


class TestFrontierVectorization:
    def test_matches_the_scalar_loop(self, ft):
        """The running-min mask keeps exactly what the loop kept."""
        import numpy as np

        from repro.optimize.budget import (
            _frontier_flat,
            _frontier_flat_scalar,
            _pf_grid,
        )

        model, n = ft
        grid = _pf_grid(model, n, P_VALUES, F_VALUES)
        tp = grid.tp[:, :, 0].ravel()
        ep = grid.ep[:, :, 0].ravel()
        np.testing.assert_array_equal(
            _frontier_flat(tp, ep), _frontier_flat_scalar(tp, ep)
        )

    def test_matches_the_loop_on_adversarial_ties(self):
        """Duplicate tp/ep values exercise the strict-< tie rule."""
        import numpy as np

        from repro.optimize.budget import _frontier_flat, _frontier_flat_scalar

        rng = np.random.default_rng(7)
        for _ in range(25):
            # coarse quantisation manufactures plenty of exact ties
            tp = rng.integers(0, 6, size=40).astype(float)
            ep = rng.integers(0, 6, size=40).astype(float)
            np.testing.assert_array_equal(
                _frontier_flat(tp, ep), _frontier_flat_scalar(tp, ep)
            )


class TestManySolvers:
    def test_budget_vector_matches_scalar_solver(self, ft):
        from repro.optimize.budget import max_speedup_under_power_many

        model, n = ft
        budgets = [900.0, 1_500.0, 2_400.0, 3_000.0, 5_000.0, 10_000.0]
        many = max_speedup_under_power_many(
            model, n=n, budgets=budgets, p_values=P_VALUES, f_values=F_VALUES
        )
        for budget, rec in zip(budgets, many):
            single = max_speedup_under_power(
                model, n=n, budget_w=budget,
                p_values=P_VALUES, f_values=F_VALUES,
            )
            assert rec == single, budget

    def test_deadline_vector_matches_scalar_solver(self, ft):
        from repro.optimize.budget import min_energy_under_deadline_many

        model, n = ft
        deadlines = [2.0, 5.0, 8.0, 20.0, 60.0, 500.0]
        many = min_energy_under_deadline_many(
            model, n=n, deadlines=deadlines,
            p_values=P_VALUES, f_values=F_VALUES,
        )
        for deadline, rec in zip(deadlines, many):
            try:
                single = min_energy_under_deadline(
                    model, n=n, t_max=deadline,
                    p_values=P_VALUES, f_values=F_VALUES,
                )
            except ParameterError as exc:
                assert isinstance(rec, ParameterError), deadline
                assert str(rec) == str(exc)
            else:
                assert rec == single, deadline

    def test_errors_come_back_in_place_with_scalar_messages(self, ft):
        from repro.optimize.budget import max_speedup_under_power_many

        model, n = ft
        many = max_speedup_under_power_many(
            model, n=n, budgets=[-1.0, 1.0, 3_000.0],
            p_values=P_VALUES, f_values=F_VALUES,
        )
        assert isinstance(many[0], ParameterError)
        assert str(many[0]) == "power budget must be positive"
        assert isinstance(many[1], ParameterError)  # below the frugalest draw
        with pytest.raises(ParameterError) as err:
            max_speedup_under_power(
                model, n=n, budget_w=1.0, p_values=P_VALUES, f_values=F_VALUES
            )
        assert str(many[1]) == str(err.value)
        assert not isinstance(many[2], ParameterError)

    def test_deadline_errors_match_scalar_messages(self, ft):
        from repro.optimize.budget import min_energy_under_deadline_many

        model, n = ft
        many = min_energy_under_deadline_many(
            model, n=n, deadlines=[0.0, 1e-6],
            p_values=P_VALUES, f_values=F_VALUES,
        )
        assert str(many[0]) == "deadline must be positive"
        with pytest.raises(ParameterError) as err:
            min_energy_under_deadline(
                model, n=n, t_max=1e-6, p_values=P_VALUES, f_values=F_VALUES
            )
        assert str(many[1]) == str(err.value)

"""Constrained optimizers: budget caps, deadlines, Pareto dominance."""

import pytest

from repro.errors import ParameterError
from repro.optimize.budget import (
    max_speedup_under_power,
    min_energy_under_deadline,
    pareto_frontier,
)
from repro.optimize.grid import evaluate_grid
from repro.paperdata import paper_model
from repro.units import GHZ

P_VALUES = [1, 2, 4, 8, 16, 32, 64]
F_VALUES = [1.6 * GHZ, 2.0 * GHZ, 2.4 * GHZ, 2.8 * GHZ]


@pytest.fixture(scope="module")
def ft():
    return paper_model("FT", klass="B")


@pytest.fixture(scope="module")
def all_points(ft):
    # same evaluation path as the solvers, so brute-force comparisons are
    # bit-exact (scalar_grid agrees only to ~1e-15, which breaks dominance
    # tie-checks)
    model, n = ft
    return evaluate_grid(
        model, p_values=P_VALUES, f_values=F_VALUES, n_values=[n]
    ).points()


class TestPowerBudget:
    def test_matches_brute_force(self, ft, all_points):
        model, n = ft
        budget = 3_000.0
        rec = max_speedup_under_power(
            model, n=n, budget_w=budget, p_values=P_VALUES, f_values=F_VALUES
        )
        feasible = [p for p in all_points if p.ep / p.tp <= budget]
        best = min(feasible, key=lambda p: p.tp)
        assert (rec.p, rec.f) == (best.p, best.f)
        assert rec.tp == pytest.approx(best.tp, rel=1e-12)
        assert rec.avg_power <= budget
        assert rec.feasible_count == len(feasible)

    def test_acceptance_scenario_is_feasible(self, ft):
        """The ISSUE's CLI scenario: FT.B on SystemG under 3 kW."""
        model, n = ft
        rec = max_speedup_under_power(
            model, n=n, budget_w=3_000.0, p_values=P_VALUES, f_values=F_VALUES
        )
        assert rec.p > 1
        assert 0 < rec.ee < 1
        assert rec.tp > 0 and rec.ep > 0

    def test_tighter_budget_never_faster(self, ft):
        model, n = ft
        loose = max_speedup_under_power(
            model, n=n, budget_w=10_000.0, p_values=P_VALUES, f_values=F_VALUES
        )
        tight = max_speedup_under_power(
            model, n=n, budget_w=1_000.0, p_values=P_VALUES, f_values=F_VALUES
        )
        assert tight.tp >= loose.tp

    def test_infeasible_budget_raises_with_minimum(self, ft):
        model, n = ft
        with pytest.raises(ParameterError, match="frugalest"):
            max_speedup_under_power(
                model, n=n, budget_w=10.0, p_values=P_VALUES,
                f_values=F_VALUES,
            )

    def test_nonpositive_budget_rejected(self, ft):
        model, n = ft
        with pytest.raises(ParameterError):
            max_speedup_under_power(
                model, n=n, budget_w=0.0, p_values=P_VALUES
            )


class TestDeadline:
    def test_matches_brute_force(self, ft, all_points):
        model, n = ft
        deadline = 30.0
        rec = min_energy_under_deadline(
            model, n=n, t_max=deadline, p_values=P_VALUES, f_values=F_VALUES
        )
        feasible = [p for p in all_points if p.tp <= deadline]
        best = min(feasible, key=lambda p: p.ep)
        assert (rec.p, rec.f) == (best.p, best.f)
        assert rec.tp <= deadline

    def test_impossible_deadline_raises(self, ft):
        model, n = ft
        with pytest.raises(ParameterError, match="deadline"):
            min_energy_under_deadline(
                model, n=n, t_max=1e-6, p_values=P_VALUES, f_values=F_VALUES
            )

    def test_nonpositive_deadline_rejected(self, ft):
        model, n = ft
        with pytest.raises(ParameterError):
            min_energy_under_deadline(
                model, n=n, t_max=-5.0, p_values=P_VALUES
            )


class TestParetoFrontier:
    def test_sorted_and_trading(self, ft):
        model, n = ft
        frontier = pareto_frontier(
            model, n=n, p_values=P_VALUES, f_values=F_VALUES
        )
        tps = [r.tp for r in frontier]
        eps = [r.ep for r in frontier]
        assert tps == sorted(tps)
        assert eps == sorted(eps, reverse=True)

    def test_no_dominated_point_survives(self, ft, all_points):
        model, n = ft
        frontier = pareto_frontier(
            model, n=n, p_values=P_VALUES, f_values=F_VALUES
        )
        for r in frontier:
            dominated = any(
                q.tp <= r.tp and q.ep <= r.ep and (q.tp, q.ep) != (r.tp, r.ep)
                for q in all_points
            )
            assert not dominated, (r.p, r.f)

    def test_every_non_dominated_point_present(self, ft, all_points):
        model, n = ft
        frontier = pareto_frontier(
            model, n=n, p_values=P_VALUES, f_values=F_VALUES
        )
        keys = {(r.p, r.f) for r in frontier}
        for q in all_points:
            dominated = any(
                o.tp <= q.tp and o.ep <= q.ep and (o.tp, o.ep) != (q.tp, q.ep)
                for o in all_points
            )
            if not dominated:
                assert (q.p, q.f) in keys

"""Shared-memory grid plane: publish/attach parity, lifecycle, forks.

These tests exercise :mod:`repro.optimize.shm` directly (the pool-level
behaviour lives in ``tests/api/test_pool.py``): bit-parity of attached
grids against in-process evaluation, superset slicing across the plane,
eviction unlinking segments, clean ``/dev/shm`` after ``clear()`` and
``destroy()``, contention, and true cross-process traffic via fork.
"""

import json
import os
import threading
import uuid

import numpy as np
import pytest

from repro.errors import ReproError
from repro.optimize.engine import GridStore, grid_for
from repro.optimize.grid import GRID_METRICS, evaluate_grid
from repro.optimize.shm import (
    HAVE_SHARED_MEMORY,
    SEGMENT_PREFIX,
    PoolBoard,
    SharedGridPlane,
    grid_nbytes,
    shm_dir_entries,
)
from repro.paperdata import paper_model
from repro.units import GHZ

pytestmark = pytest.mark.skipif(
    not HAVE_SHARED_MEMORY,
    reason="needs POSIX shared memory (multiprocessing.shared_memory + fcntl)",
)

P_AXIS = [1, 2, 4, 8, 16, 32]
F_AXIS = [1.6 * GHZ, 2.0 * GHZ, 2.4 * GHZ, 2.8 * GHZ]
ARRAYS = (*GRID_METRICS, "bottleneck")


@pytest.fixture(scope="module")
def cg():
    return paper_model("CG", klass="B")


@pytest.fixture()
def plane():
    plane = SharedGridPlane(uuid.uuid4().hex[:12], create=True)
    try:
        yield plane
    finally:
        plane.destroy()


def _model_json(model) -> str:
    key = GridStore._shared_model_key(model)
    assert key is not None, "paper_model must carry a shared_key"
    return key


def _grid(model, n, ps=P_AXIS, fs=F_AXIS, ns=None):
    return evaluate_grid(
        model, p_values=ps, f_values=fs, n_values=ns or [n]
    )


def _segments(plane) -> list[str]:
    prefix = f"{SEGMENT_PREFIX}-{plane.name}-g"
    return [e for e in shm_dir_entries() if e.startswith(prefix)]


class TestPublishAttach:
    def test_attached_grid_is_bit_identical(self, plane, cg):
        model, n = cg
        grid = _grid(model, n)
        assert plane.publish(_model_json(model), grid)
        attached = plane.lookup(
            _model_json(model), grid.p_values, grid.f_values, grid.n_values
        )
        assert attached is not None
        for name in ARRAYS:
            np.testing.assert_array_equal(
                getattr(attached, name), getattr(grid, name), err_msg=name
            )
            assert not getattr(attached, name).flags.writeable
        assert attached.p_values == grid.p_values
        assert plane.stats()["attach_hits"] == 1

    def test_lookup_miss_counts(self, plane, cg):
        model, n = cg
        assert plane.lookup(_model_json(model), [1], [2.8e9], [n]) is None
        assert plane.stats()["attach_misses"] == 1

    def test_first_write_wins_on_racing_publish(self, plane, cg):
        model, n = cg
        grid = _grid(model, n)
        assert plane.publish(_model_json(model), grid)
        assert not plane.publish(_model_json(model), grid)
        stats = plane.stats()
        assert stats["published"] == 1
        assert stats["publish_races"] == 1
        assert stats["segments"] == 1

    def test_oversized_grid_is_rejected(self, cg):
        model, n = cg
        plane = SharedGridPlane(uuid.uuid4().hex[:12], create=True,
                                max_bytes=64)
        try:
            assert not plane.publish(_model_json(model), _grid(model, n))
            assert plane.stats()["publish_rejects"] == 1
            assert plane.stats()["segments"] == 0
        finally:
            plane.destroy()

    def test_superset_slice_matches_direct_evaluation(self, plane, cg):
        model, n = cg
        superset = _grid(model, n, ns=[0.5 * n, n, 2.0 * n])
        assert plane.publish(_model_json(model), superset)
        sub = plane.lookup_superset(
            _model_json(model), [2, 16], F_AXIS[1:3], [n]
        )
        assert sub is not None
        direct = _grid(model, n, ps=[2, 16], fs=F_AXIS[1:3])
        for name in ARRAYS:
            np.testing.assert_array_equal(
                getattr(sub, name), getattr(direct, name), err_msg=name
            )
        assert plane.stats()["superset_attach_hits"] == 1


class TestLifecycle:
    def test_eviction_unlinks_oldest_segments(self, cg):
        model, n = cg
        one = grid_nbytes(_grid(model, n))
        plane = SharedGridPlane(uuid.uuid4().hex[:12], create=True,
                                max_bytes=2 * one + 16)
        try:
            for i, p_axis in enumerate(([1, 2], [4, 8], [16, 32])):
                grid = _grid(model, n, ps=p_axis + P_AXIS[:4])
                assert plane.publish(_model_json(model), grid)
            stats = plane.stats()
            assert stats["evicted"] >= 1
            assert stats["segment_bytes"] <= plane.max_bytes
            # evicted segments are unlinked from /dev/shm, not just
            # dropped from the directory
            assert len(_segments(plane)) == stats["segments"]
            # the newest publish always survives eviction
            assert plane.lookup(
                _model_json(model), grid.p_values, grid.f_values,
                grid.n_values,
            ) is not None
        finally:
            plane.destroy()

    def test_clear_unlinks_every_data_segment(self, plane, cg):
        model, n = cg
        assert plane.publish(_model_json(model), _grid(model, n))
        assert _segments(plane)
        plane.clear()
        assert _segments(plane) == []
        assert plane.stats()["segments"] == 0

    def test_destroy_leaves_no_shm_entries(self, cg):
        model, n = cg
        name = uuid.uuid4().hex[:12]
        plane = SharedGridPlane(name, create=True)
        plane.publish(_model_json(model), _grid(model, n))
        assert any(name in e for e in shm_dir_entries())
        plane.destroy()
        assert not any(name in e for e in shm_dir_entries())
        plane.destroy()  # idempotent

    def test_eviction_does_not_invalidate_live_attachments(self, cg):
        model, n = cg
        one = grid_nbytes(_grid(model, n))
        plane = SharedGridPlane(uuid.uuid4().hex[:12], create=True,
                                max_bytes=one + 16)
        try:
            first = _grid(model, n, ps=[1, 2, 4, 8])
            assert plane.publish(_model_json(model), first)
            attached = plane.lookup(
                _model_json(model), first.p_values, first.f_values,
                first.n_values,
            )
            assert attached is not None
            held = attached.tp.copy()
            # publishing a second grid evicts (and unlinks) the first —
            # POSIX keeps the mapping alive until the reader detaches
            assert plane.publish(
                _model_json(model), _grid(model, n, ps=[16, 32, 64])
            )
            assert plane.stats()["evicted"] >= 1
            np.testing.assert_array_equal(attached.tp, held)
        finally:
            plane.destroy()


class TestContention:
    def test_concurrent_publish_and_attach(self, plane, cg):
        model, n = cg
        model_json = _model_json(model)
        grids = [
            _grid(model, n, ps=[p, 2 * p]) for p in (1, 2, 4, 8, 16, 32)
        ]
        errors: list[BaseException] = []

        def worker(grid):
            try:
                for _ in range(5):
                    plane.publish(model_json, grid)
                    got = plane.lookup(
                        model_json, grid.p_values, grid.f_values,
                        grid.n_values,
                    )
                    assert got is not None
                    np.testing.assert_array_equal(got.ee, grid.ee)
            except BaseException as exc:  # surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(g,)) for g in grids
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors
        stats = plane.stats()
        assert stats["segments"] == len(grids)
        assert stats["published"] == len(grids)


def _in_fork(fn) -> int:
    """Run ``fn`` in a forked child; return its exit status (0 = ok)."""
    pid = os.fork()
    if pid == 0:
        code = 1
        try:
            fn()
            code = 0
        except BaseException:  # pragma: no cover - exercised on failure
            import traceback

            traceback.print_exc()
        finally:
            os._exit(code)
    _, status = os.waitpid(pid, 0)
    return os.waitstatus_to_exitcode(status)


class TestCrossProcess:
    def test_child_publish_parent_attach(self, plane, cg):
        model, n = cg
        grid = _grid(model, n)
        model_json = _model_json(model)

        def child():
            attach = SharedGridPlane(plane.name)
            assert attach.publish(model_json, grid)
            attach.detach()

        assert _in_fork(child) == 0
        attached = plane.lookup(
            model_json, grid.p_values, grid.f_values, grid.n_values
        )
        assert attached is not None, "parent must see the child's publish"
        for name in ARRAYS:
            np.testing.assert_array_equal(
                getattr(attached, name), getattr(grid, name), err_msg=name
            )

    def test_parent_publish_child_superset_slice(self, plane, cg):
        model, n = cg
        superset = _grid(model, n, ns=[0.5 * n, n, 2.0 * n])
        model_json = _model_json(model)
        assert plane.publish(model_json, superset)
        direct = _grid(model, n, ps=[2, 16], fs=F_AXIS[1:3])

        def child():
            attach = SharedGridPlane(plane.name)
            sub = attach.lookup_superset(
                model_json, [2, 16], F_AXIS[1:3], [n]
            )
            assert sub is not None
            for name in ARRAYS:
                np.testing.assert_array_equal(
                    getattr(sub, name), getattr(direct, name), err_msg=name
                )
            attach.detach()

        assert _in_fork(child) == 0

    def test_grid_store_serves_from_sibling_store(self, plane, cg):
        """The engine-level flow: store A evaluates+publishes, B attaches."""
        model, n = cg
        writer = GridStore()
        writer.attach_plane(plane)
        published = grid_for(
            model, p_values=P_AXIS, f_values=F_AXIS, n_values=[n],
            store=writer,
        )
        assert writer.stats()["shared"]["published"] == 1

        reader = GridStore()
        reader.attach_plane(plane)
        served = grid_for(
            model, p_values=P_AXIS, f_values=F_AXIS, n_values=[n],
            store=reader,
        )
        stats = reader.stats()["shared"]
        assert stats["hits"] == 1
        assert stats["misses"] == 0
        assert stats["attached_segments"] >= 1
        assert stats["shared_bytes"] > 0
        for name in ARRAYS:
            np.testing.assert_array_equal(
                getattr(served, name), getattr(published, name),
                err_msg=name,
            )

    def test_store_without_fingerprint_stays_local(self, plane, cg):
        model, n = cg
        bare = type(model)(model.machine, model._workload, name="adhoc")
        store = GridStore()
        store.attach_plane(plane)
        grid_for(model=bare, p_values=[1, 2], n_values=[n], store=store)
        stats = store.stats()["shared"]
        assert stats["published"] == 0
        assert stats["misses"] == 0, "unfingerprinted models skip the plane"


class TestPoolBoard:
    def test_roundtrip_and_unwritten_slots(self):
        board = PoolBoard(uuid.uuid4().hex[:12], slots=3, create=True)
        try:
            assert board.read(0) is None
            board.write(0, {"pid": 123, "requests_total": 7})
            board.write(2, {"pid": 456})
            assert board.read(0)["requests_total"] == 7
            assert board.read(1) is None
            assert [m["pid"] for m in board.read_all()] == [123, 456]
        finally:
            board.destroy()

    def test_cross_process_write_is_visible(self):
        board = PoolBoard(uuid.uuid4().hex[:12], slots=2, create=True)
        try:
            def child():
                attach = PoolBoard(board.name, slots=2)
                attach.write(1, {"pid": os.getpid(), "requests_total": 3})
                attach.detach()

            assert _in_fork(child) == 0
            entry = board.read(1)
            assert entry is not None
            assert entry["requests_total"] == 3
        finally:
            board.destroy()

    def test_destroy_unlinks_the_segment(self):
        name = uuid.uuid4().hex[:12]
        board = PoolBoard(name, slots=1, create=True)
        assert any(name in e for e in shm_dir_entries())
        board.destroy()
        assert not any(name in e for e in shm_dir_entries())

    def test_oversized_payload_is_rejected(self):
        board = PoolBoard(uuid.uuid4().hex[:12], slots=1, create=True)
        try:
            with pytest.raises(ReproError):
                board.write(0, {"blob": "x" * (1 << 20)})
        finally:
            board.destroy()

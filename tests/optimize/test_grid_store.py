"""GridStore semantics: keying, superset slicing, eviction, accounting."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.optimize.engine import GridStore, default_store, ee_pairs, grid_for
from repro.optimize.grid import ee_at_pairs, evaluate_grid
from repro.paperdata import paper_model
from repro.units import GHZ

P_AXIS = [1, 2, 4, 8, 16, 32]
F_AXIS = [1.6 * GHZ, 2.0 * GHZ, 2.4 * GHZ, 2.8 * GHZ]


@pytest.fixture(scope="module")
def ft():
    return paper_model("FT", klass="B")


class TestExactHits:
    def test_same_axes_return_the_same_grid_object(self, ft):
        model, n = ft
        store = GridStore()
        a = grid_for(model, p_values=P_AXIS, f_values=F_AXIS,
                     n_values=[n], store=store)
        b = grid_for(model, p_values=P_AXIS, f_values=F_AXIS,
                     n_values=[n], store=store)
        assert a is b
        assert store.stats()["hits"] == 1
        assert store.stats()["misses"] == 1

    def test_f_none_and_calibration_frequency_share_one_entry(self, ft):
        model, n = ft
        store = GridStore()
        a = grid_for(model, p_values=P_AXIS, n_values=[n], store=store)
        b = grid_for(model, p_values=P_AXIS, f_values=[model.machine.f],
                     n_values=[n], store=store)
        assert a is b, "f=None must resolve to the calibration frequency key"

    def test_matches_direct_evaluation_exactly(self, ft):
        model, n = ft
        store = GridStore()
        cached = grid_for(model, p_values=P_AXIS, f_values=F_AXIS,
                          n_values=[n], store=store)
        direct = evaluate_grid(model, p_values=P_AXIS, f_values=F_AXIS,
                               n_values=[n])
        for name in ("tp", "ep", "ee", "eef", "avg_power", "speedup"):
            np.testing.assert_array_equal(
                getattr(cached, name), getattr(direct, name), err_msg=name
            )
        np.testing.assert_array_equal(cached.bottleneck, direct.bottleneck)


class TestSupersetSlicing:
    def test_subgrid_is_sliced_bit_identically(self, ft):
        model, n = ft
        store = GridStore()
        grid_for(model, p_values=P_AXIS, f_values=F_AXIS,
                 n_values=[0.5 * n, n, 2.0 * n], store=store)
        sub = grid_for(model, p_values=[2, 16], f_values=F_AXIS[1:3],
                       n_values=[n], store=store)
        stats = store.stats()
        assert stats["superset_hits"] == 1
        assert stats["misses"] == 1
        direct = evaluate_grid(model, p_values=[2, 16],
                               f_values=F_AXIS[1:3], n_values=[n])
        for name in ("tp", "ep", "ee", "avg_power"):
            np.testing.assert_array_equal(
                getattr(sub, name), getattr(direct, name), err_msg=name
            )
        assert sub.p_values == (2, 16)
        assert sub.n_values == (float(n),)

    def test_slice_respects_requested_axis_order(self, ft):
        model, n = ft
        store = GridStore()
        grid_for(model, p_values=P_AXIS, f_values=F_AXIS,
                 n_values=[n], store=store)
        sub = grid_for(model, p_values=[16, 2], f_values=F_AXIS,
                       n_values=[n], store=store)
        assert store.stats()["superset_hits"] == 1
        assert sub.p_values == (16, 2)
        np.testing.assert_array_equal(
            sub.tp, evaluate_grid(
                model, p_values=[16, 2], f_values=F_AXIS, n_values=[n]
            ).tp,
        )

    def test_sliced_grid_becomes_an_exact_entry(self, ft):
        model, n = ft
        store = GridStore()
        grid_for(model, p_values=P_AXIS, f_values=F_AXIS,
                 n_values=[n], store=store)
        first = grid_for(model, p_values=[2, 16], f_values=F_AXIS,
                         n_values=[n], store=store)
        second = grid_for(model, p_values=[2, 16], f_values=F_AXIS,
                          n_values=[n], store=store)
        assert first is second
        assert store.stats()["hits"] == 1

    def test_different_models_never_share(self, ft):
        model, n = ft
        other_model, other_n = paper_model("CG", klass="B")
        store = GridStore()
        grid_for(model, p_values=P_AXIS, n_values=[n], store=store)
        grid_for(other_model, p_values=P_AXIS[:3], n_values=[other_n],
                 store=store)
        assert store.stats()["misses"] == 2
        assert store.stats()["superset_hits"] == 0


class TestStoreHygiene:
    def test_cached_arrays_are_read_only(self, ft):
        model, n = ft
        grid = grid_for(model, p_values=P_AXIS, n_values=[n],
                        store=GridStore())
        with pytest.raises(ValueError):
            grid.tp[0, 0, 0] = 0.0

    def test_argbest_works_on_frozen_arrays(self, ft):
        model, n = ft
        grid = grid_for(model, p_values=P_AXIS, f_values=F_AXIS,
                        n_values=[n], store=GridStore())
        ip, jf, kn = grid.argbest("tp", where=grid.avg_power <= 4000.0)
        assert grid.avg_power[ip, jf, kn] <= 4000.0
        ip2, jf2, kn2 = grid.argbest("ee", mode="max")
        assert grid.ee[ip2, jf2, kn2] == grid.ee.max()

    def test_lru_eviction_bounds_entries_and_bytes(self, ft):
        model, n = ft
        store = GridStore(max_entries=2)
        for k in range(4):
            grid_for(model, p_values=[1, 2 + k], n_values=[n], store=store)
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 2
        assert stats["bytes"] > 0

    def test_clear_drops_entries(self, ft):
        model, n = ft
        store = GridStore()
        grid_for(model, p_values=P_AXIS, n_values=[n], store=store)
        store.clear()
        assert store.stats()["entries"] == 0
        assert store.stats()["bytes"] == 0
        grid_for(model, p_values=P_AXIS, n_values=[n], store=store)
        assert store.stats()["misses"] == 2  # counters are cumulative

    def test_invalid_axes_surface_the_evaluator_errors(self, ft):
        model, n = ft
        store = GridStore()
        with pytest.raises(ParameterError):
            grid_for(model, p_values=[], n_values=[n], store=store)
        with pytest.raises(ParameterError):
            grid_for(model, p_values=[0, 2], n_values=[n], store=store)

    def test_empty_f_axis_errors_even_on_a_warm_store(self, ft):
        """Regression: f_values=() must not superset-match vacuously."""
        model, n = ft
        store = GridStore()
        grid_for(model, p_values=P_AXIS, f_values=F_AXIS,
                 n_values=[n], store=store)  # warm the store
        with pytest.raises(ParameterError, match="empty"):
            grid_for(model, p_values=P_AXIS, f_values=(),
                     n_values=[n], store=store)

    def test_max_entries_must_be_positive(self):
        with pytest.raises(ParameterError):
            GridStore(max_entries=0)


class TestDefaultStoreAndPairs:
    def test_default_store_is_shared(self):
        assert default_store() is default_store()

    def test_ee_pairs_matches_ee_at_pairs_and_counts(self, ft):
        model, _ = ft
        store = GridStore()
        ns = np.array([1e6, 2e6, 4e6])
        ps = np.array([2, 4, 8])
        np.testing.assert_array_equal(
            ee_pairs(model, ns, ps, store=store),
            ee_at_pairs(model, ns, ps),
        )
        assert store.stats()["pair_batches"] == 1
        assert store.stats()["pair_points"] == 3

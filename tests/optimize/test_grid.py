"""Vectorized grid evaluation: exact parity with the scalar path."""

import numpy as np
import pytest

from repro.analysis.report import ascii_heatmap
from repro.analysis.surface import surface_from_grid
from repro.analysis.sweep import points_table
from repro.core.model import IsoEnergyModel
from repro.errors import ParameterError
from repro.npb.ft import FtWorkload
from repro.optimize.grid import (
    BOTTLENECK_NAMES,
    GRID_METRICS,
    evaluate_grid,
    scalar_grid,
)
from repro.units import GHZ

P_VALUES = [1, 2, 8, 32, 128]
F_VALUES = [1.6 * GHZ, 2.2 * GHZ, 2.8 * GHZ]
N_VALUES = [2**18, 2**20, 2**22]


@pytest.fixture()
def model(machine) -> IsoEnergyModel:
    return IsoEnergyModel(machine, FtWorkload(niter=5), name="FT-grid")


@pytest.fixture()
def grid(model):
    return evaluate_grid(
        model, p_values=P_VALUES, f_values=F_VALUES, n_values=N_VALUES
    )


class TestEquivalence:
    def test_every_point_matches_scalar_evaluate(self, model, grid):
        ref = scalar_grid(
            model, p_values=P_VALUES, f_values=F_VALUES, n_values=N_VALUES
        )
        pts = grid.points()
        assert len(pts) == len(ref) == grid.size
        for a, b in zip(pts, ref):
            assert (a.p, a.f, a.n) == (b.p, b.f, b.n)
            for fld in (
                "t1", "tp", "e1", "ep", "eef", "ee",
                "speedup", "perf_efficiency",
            ):
                assert getattr(a, fld) == pytest.approx(
                    getattr(b, fld), rel=1e-12
                ), fld
            assert a.bottleneck == b.bottleneck

    def test_default_frequency_axis_is_calibration(self, model, machine):
        grid = evaluate_grid(model, p_values=[4], n_values=[2**20])
        assert grid.f_values == (machine.f,)
        assert grid.point(0, 0, 0).f == machine.f

    def test_avg_power_is_ep_over_tp(self, grid):
        assert np.allclose(grid.avg_power, grid.ep / grid.tp)

    def test_p1_column_is_ideal(self, grid):
        ip = P_VALUES.index(1)
        assert np.allclose(grid.ee[ip], 1.0)
        assert np.all(grid.bottleneck[ip] == 0)
        assert BOTTLENECK_NAMES[0] == "none"

    def test_p1_parity_for_callable_without_bookkeeping(self, machine):
        """A callable Θ2 carrying overheads but no p field still matches
        the scalar path at p=1 (which strips them via sequential())."""
        from repro.core.parameters import AppParams

        model = IsoEnergyModel(
            machine,
            lambda n, p: AppParams(
                alpha=0.9, wc=n, wm=n / 10, wco=n / 5,
                m_messages=100.0, b_bytes=1e6,
            ),
        )
        grid = evaluate_grid(model, p_values=[1, 4], n_values=[1e9])
        for ip in range(2):
            a = grid.point(ip, 0, 0)
            b = model.evaluate(n=1e9, p=grid.p_values[ip])
            for fld in ("tp", "ep", "eef", "ee"):
                assert getattr(a, fld) == pytest.approx(
                    getattr(b, fld), rel=1e-12
                ), fld


class TestAccessors:
    def test_shape_and_size(self, grid):
        assert grid.shape == (len(P_VALUES), len(F_VALUES), len(N_VALUES))
        assert grid.size == len(P_VALUES) * len(F_VALUES) * len(N_VALUES)

    def test_slices(self, grid):
        assert grid.slice_pf("ee", kn=1).shape == (
            len(P_VALUES), len(F_VALUES))
        assert grid.slice_pn("tp", jf=0).shape == (
            len(P_VALUES), len(N_VALUES))

    def test_argbest_min_and_max(self, grid):
        ip, jf, kn = grid.argbest("tp")
        assert grid.tp[ip, jf, kn] == grid.tp.min()
        ip, jf, kn = grid.argbest("ee", mode="max")
        assert grid.ee[ip, jf, kn] == grid.ee.max()

    def test_argbest_respects_mask(self, grid):
        mask = grid.avg_power <= np.median(grid.avg_power)
        ip, jf, kn = grid.argbest("tp", where=mask)
        assert mask[ip, jf, kn]
        assert grid.tp[ip, jf, kn] == grid.tp[mask].min()

    def test_best_point_matches_argbest(self, grid):
        pt = grid.best_point("ep")
        ip, jf, kn = grid.argbest("ep")
        assert pt.ep == float(grid.ep[ip, jf, kn])

    def test_points_feed_points_table(self, grid):
        rows = points_table(grid.points())
        assert len(rows) == grid.size
        assert rows[0][0] == P_VALUES[0]


class TestAnalysisBridge:
    def test_surface_from_grid_pf(self, grid):
        surf = surface_from_grid(grid, metric="ee", axis="f", index=1)
        assert surf.values.shape == (len(P_VALUES), len(F_VALUES))
        assert surf.fixed == {"n": float(N_VALUES[1])}
        # EE falls with p at every f — same diagnostic the figures use
        assert surf.monotone_along_x(increasing=False)

    def test_surface_from_grid_pn(self, grid):
        surf = surface_from_grid(grid, metric="ee", axis="n", index=0)
        assert surf.values.shape == (len(P_VALUES), len(N_VALUES))
        assert surf.fixed == {"f": float(F_VALUES[0])}

    def test_surface_renders_as_heatmap(self, grid):
        surf = surface_from_grid(grid, metric="ee", axis="f")
        art = ascii_heatmap(
            surf.values, [int(p) for p in surf.x],
            [f"{f / GHZ:.1f}" for f in surf.y], lo=0.0, hi=1.0,
        )
        assert "scale:" in art

    def test_surface_bad_axis(self, grid):
        with pytest.raises(ParameterError):
            surface_from_grid(grid, axis="q")


class TestValidation:
    def test_empty_axes_rejected(self, model):
        with pytest.raises(ParameterError):
            evaluate_grid(model, p_values=[], n_values=[2**20])
        with pytest.raises(ParameterError):
            evaluate_grid(model, p_values=[4], n_values=[])
        with pytest.raises(ParameterError):
            evaluate_grid(model, p_values=[4], n_values=[2**20], f_values=[])

    def test_invalid_p_rejected(self, model):
        with pytest.raises(ParameterError):
            evaluate_grid(model, p_values=[0], n_values=[2**20])

    def test_unknown_metric_rejected(self, grid):
        with pytest.raises(ParameterError):
            grid.argbest("joules")
        with pytest.raises(ParameterError):
            grid.slice_pf("joules")
        assert "ee" in GRID_METRICS

    def test_all_infeasible_mask_rejected(self, grid):
        with pytest.raises(ParameterError):
            grid.argbest("tp", where=np.zeros(grid.shape, dtype=bool))

    def test_wrong_mask_shape_rejected(self, grid):
        with pytest.raises(ParameterError):
            grid.argbest("tp", where=np.ones((1, 1, 1), dtype=bool))


class TestBatchHooks:
    def test_theta2_table_matches_app_params(self, model):
        table = model.theta2_table(N_VALUES, P_VALUES)
        assert table["wc"].shape == (len(N_VALUES), len(P_VALUES))
        app = model.app_params(float(N_VALUES[1]), P_VALUES[2])
        assert table["wco"][1, 2] == app.wco
        assert table["b_bytes"][1, 2] == app.b_bytes

    def test_caches_warm_across_grid_calls(self, model):
        evaluate_grid(
            model, p_values=P_VALUES, f_values=F_VALUES, n_values=N_VALUES
        )
        before = model.cache_info()["app_params"].hits
        evaluate_grid(
            model, p_values=P_VALUES, f_values=F_VALUES, n_values=N_VALUES
        )
        after = model.cache_info()["app_params"].hits
        assert after > before

"""Vectorized grid evaluation: exact parity with the scalar path."""

import numpy as np
import pytest

from repro.analysis.report import ascii_heatmap
from repro.analysis.surface import surface_from_grid
from repro.analysis.sweep import points_table
from repro.core.model import IsoEnergyModel
from repro.errors import ParameterError
from repro.npb.ft import FtWorkload
from repro.optimize.grid import (
    BOTTLENECK_NAMES,
    GRID_METRICS,
    ee_at_pairs,
    evaluate_grid,
    scalar_grid,
)
from repro.units import GHZ

P_VALUES = [1, 2, 8, 32, 128]
F_VALUES = [1.6 * GHZ, 2.2 * GHZ, 2.8 * GHZ]
N_VALUES = [2**18, 2**20, 2**22]


@pytest.fixture()
def model(machine) -> IsoEnergyModel:
    return IsoEnergyModel(machine, FtWorkload(niter=5), name="FT-grid")


@pytest.fixture()
def grid(model):
    return evaluate_grid(
        model, p_values=P_VALUES, f_values=F_VALUES, n_values=N_VALUES
    )


class TestEquivalence:
    def test_every_point_matches_scalar_evaluate(self, model, grid):
        ref = scalar_grid(
            model, p_values=P_VALUES, f_values=F_VALUES, n_values=N_VALUES
        )
        pts = grid.points()
        assert len(pts) == len(ref) == grid.size
        for a, b in zip(pts, ref):
            assert (a.p, a.f, a.n) == (b.p, b.f, b.n)
            for fld in (
                "t1", "tp", "e1", "ep", "eef", "ee",
                "speedup", "perf_efficiency",
            ):
                assert getattr(a, fld) == pytest.approx(
                    getattr(b, fld), rel=1e-12
                ), fld
            assert a.bottleneck == b.bottleneck

    def test_default_frequency_axis_is_calibration(self, model, machine):
        grid = evaluate_grid(model, p_values=[4], n_values=[2**20])
        assert grid.f_values == (machine.f,)
        assert grid.point(0, 0, 0).f == machine.f

    def test_avg_power_is_ep_over_tp(self, grid):
        assert np.allclose(grid.avg_power, grid.ep / grid.tp)

    def test_p1_column_is_ideal(self, grid):
        ip = P_VALUES.index(1)
        assert np.allclose(grid.ee[ip], 1.0)
        assert np.all(grid.bottleneck[ip] == 0)
        assert BOTTLENECK_NAMES[0] == "none"

    def test_p1_parity_for_callable_without_bookkeeping(self, machine):
        """A callable Θ2 carrying overheads but no p field still matches
        the scalar path at p=1 (which strips them via sequential())."""
        from repro.core.parameters import AppParams

        model = IsoEnergyModel(
            machine,
            lambda n, p: AppParams(
                alpha=0.9, wc=n, wm=n / 10, wco=n / 5,
                m_messages=100.0, b_bytes=1e6,
            ),
        )
        grid = evaluate_grid(model, p_values=[1, 4], n_values=[1e9])
        for ip in range(2):
            a = grid.point(ip, 0, 0)
            b = model.evaluate(n=1e9, p=grid.p_values[ip])
            for fld in ("tp", "ep", "eef", "ee"):
                assert getattr(a, fld) == pytest.approx(
                    getattr(b, fld), rel=1e-12
                ), fld


class TestAccessors:
    def test_shape_and_size(self, grid):
        assert grid.shape == (len(P_VALUES), len(F_VALUES), len(N_VALUES))
        assert grid.size == len(P_VALUES) * len(F_VALUES) * len(N_VALUES)

    def test_slices(self, grid):
        assert grid.slice_pf("ee", kn=1).shape == (
            len(P_VALUES), len(F_VALUES))
        assert grid.slice_pn("tp", jf=0).shape == (
            len(P_VALUES), len(N_VALUES))

    def test_argbest_min_and_max(self, grid):
        ip, jf, kn = grid.argbest("tp")
        assert grid.tp[ip, jf, kn] == grid.tp.min()
        ip, jf, kn = grid.argbest("ee", mode="max")
        assert grid.ee[ip, jf, kn] == grid.ee.max()

    def test_argbest_respects_mask(self, grid):
        mask = grid.avg_power <= np.median(grid.avg_power)
        ip, jf, kn = grid.argbest("tp", where=mask)
        assert mask[ip, jf, kn]
        assert grid.tp[ip, jf, kn] == grid.tp[mask].min()

    def test_best_point_matches_argbest(self, grid):
        pt = grid.best_point("ep")
        ip, jf, kn = grid.argbest("ep")
        assert pt.ep == float(grid.ep[ip, jf, kn])

    def test_points_feed_points_table(self, grid):
        rows = points_table(grid.points())
        assert len(rows) == grid.size
        assert rows[0][0] == P_VALUES[0]


class TestAnalysisBridge:
    def test_surface_from_grid_pf(self, grid):
        surf = surface_from_grid(grid, metric="ee", axis="f", index=1)
        assert surf.values.shape == (len(P_VALUES), len(F_VALUES))
        assert surf.fixed == {"n": float(N_VALUES[1])}
        # EE falls with p at every f — same diagnostic the figures use
        assert surf.monotone_along_x(increasing=False)

    def test_surface_from_grid_pn(self, grid):
        surf = surface_from_grid(grid, metric="ee", axis="n", index=0)
        assert surf.values.shape == (len(P_VALUES), len(N_VALUES))
        assert surf.fixed == {"f": float(F_VALUES[0])}

    def test_surface_renders_as_heatmap(self, grid):
        surf = surface_from_grid(grid, metric="ee", axis="f")
        art = ascii_heatmap(
            surf.values, [int(p) for p in surf.x],
            [f"{f / GHZ:.1f}" for f in surf.y], lo=0.0, hi=1.0,
        )
        assert "scale:" in art

    def test_surface_bad_axis(self, grid):
        with pytest.raises(ParameterError):
            surface_from_grid(grid, axis="q")


class TestValidation:
    def test_empty_axes_rejected(self, model):
        with pytest.raises(ParameterError):
            evaluate_grid(model, p_values=[], n_values=[2**20])
        with pytest.raises(ParameterError):
            evaluate_grid(model, p_values=[4], n_values=[])
        with pytest.raises(ParameterError):
            evaluate_grid(model, p_values=[4], n_values=[2**20], f_values=[])

    def test_invalid_p_rejected(self, model):
        with pytest.raises(ParameterError):
            evaluate_grid(model, p_values=[0], n_values=[2**20])

    def test_unknown_metric_rejected(self, grid):
        with pytest.raises(ParameterError):
            grid.argbest("joules")
        with pytest.raises(ParameterError):
            grid.slice_pf("joules")
        assert "ee" in GRID_METRICS

    def test_all_infeasible_mask_rejected(self, grid):
        with pytest.raises(ParameterError):
            grid.argbest("tp", where=np.zeros(grid.shape, dtype=bool))

    def test_wrong_mask_shape_rejected(self, grid):
        with pytest.raises(ParameterError):
            grid.argbest("tp", where=np.ones((1, 1, 1), dtype=bool))


class TestBatchHooks:
    def test_theta2_table_matches_app_params(self, model):
        table = model.theta2_table(N_VALUES, P_VALUES)
        assert table["wc"].shape == (len(N_VALUES), len(P_VALUES))
        app = model.app_params(float(N_VALUES[1]), P_VALUES[2])
        assert table["wco"][1, 2] == app.wco
        assert table["b_bytes"][1, 2] == app.b_bytes

    def test_caches_warm_across_grid_calls(self, model):
        evaluate_grid(
            model, p_values=P_VALUES, f_values=F_VALUES, n_values=N_VALUES
        )
        before = model.cache_info()["app_params"].hits
        evaluate_grid(
            model, p_values=P_VALUES, f_values=F_VALUES, n_values=N_VALUES
        )
        after = model.cache_info()["app_params"].hits
        assert after > before


class TestEeAtPairs:
    """The pairwise EE evaluator behind the batched contour bisection."""

    def test_matches_scalar_ee_exactly(self, model):
        ns = [2**18, 2**19, 2**20, 2**21, 2**22]
        ps = [1, 2, 8, 32, 128]
        got = ee_at_pairs(model, ns, ps)
        want = [model.ee(n=nv, p=pv) for nv, pv in zip(ns, ps)]
        assert got == pytest.approx(want, rel=1e-12)

    def test_matches_on_paper_models(self):
        from repro.paperdata import paper_model

        for bench, ps in (("FT", [1, 3, 17, 100]), ("CG", [1, 4, 16, 64]),
                          ("EP", [1, 5, 50, 500])):
            m, n = paper_model(bench, klass="B")
            ns = [n * (0.5 + 0.3 * i) for i in range(len(ps))]
            got = ee_at_pairs(m, ns, ps)
            want = [m.ee(n=nv, p=pv) for nv, pv in zip(ns, ps)]
            assert got == pytest.approx(want, rel=1e-12), bench

    def test_respects_frequency(self, model):
        got = ee_at_pairs(model, [2**20], [32], f=1.6 * GHZ)
        assert got[0] == pytest.approx(model.ee(n=2**20, p=32, f=1.6 * GHZ),
                                       rel=1e-12)

    def test_p_one_is_exactly_one(self, model):
        assert ee_at_pairs(model, [2**20], [1])[0] == 1.0

    def test_mismatched_vectors_rejected(self, model):
        with pytest.raises(ParameterError, match="matching"):
            model.theta2_pairs([1e6, 2e6], [1, 2, 4])
        with pytest.raises(ParameterError):
            model.theta2_pairs([], [])
        with pytest.raises(ParameterError, match="p must be"):
            model.theta2_pairs([1e6], [0])

    def test_params_batch_matches_scalar_params(self):
        """The NPB headline trio's vectorized Θ2 equals the scalar forms."""
        from repro.npb.cg import CgWorkload
        from repro.npb.ep import EpWorkload
        from repro.npb.ft import FtWorkload

        cases = [
            (FtWorkload(), [1, 2, 3, 7, 64, 129], [1e5, 2e5, 4e5, 8e5, 2e6, 5e6]),
            (CgWorkload(), [1, 2, 4, 16, 256], [7e4, 8e4, 9e4, 2e5, 3e5]),
            (EpWorkload(), [1, 2, 9, 1000], [2**28, 2**29, 2**30, 2**31]),
        ]
        for workload, ps, ns in cases:
            batch = workload.params_batch(np.array(ns), np.array(ps))
            for k, (nv, pv) in enumerate(zip(ns, ps)):
                app = workload.params(nv, pv)
                for field in ("alpha", "wc", "wm", "wco", "wmo",
                              "m_messages", "b_bytes", "t_io"):
                    assert batch[field][k] == pytest.approx(
                        getattr(app, field), rel=1e-12, abs=1e-30
                    ), (type(workload).__name__, field, pv)

    def test_cg_params_batch_rejects_non_power_of_two(self):
        from repro.errors import ConfigurationError
        from repro.npb.cg import CgWorkload

        with pytest.raises(ConfigurationError, match="power-of-two"):
            CgWorkload().params_batch(np.array([1e5]), np.array([3]))

"""Shared fixtures: small clusters, reference parameter vectors."""

from __future__ import annotations

import pytest

from repro.cluster import dori, system_g
from repro.core.parameters import AppParams, MachineParams
from repro.units import GHZ, NS, US


@pytest.fixture(scope="session")
def systemg8():
    """An 8-node SystemG slice (session-scoped: construction is cheap but
    ubiquitous)."""
    return system_g(8)


@pytest.fixture(scope="session")
def dori4():
    return dori(4)


@pytest.fixture()
def machine() -> MachineParams:
    """A hand-built Θ1 with SystemG-like values."""
    return MachineParams(
        tc=0.781 / (2.8 * GHZ),
        tm=96 * NS,
        ts=4 * US,
        tw=1.0 / 3.2e9,
        delta_pc=140.0,
        delta_pm=18.0,
        delta_pio=4.0,
        pc_idle=15.0,
        pm_idle=6.0,
        pio_idle=4.0,
        p_others=30.0,
        f=2.8 * GHZ,
        f_ref=2.8 * GHZ,
        gamma=2.0,
        cpi=0.781,
    )


@pytest.fixture()
def app() -> AppParams:
    """A mid-sized parallel workload with every overhead term active."""
    return AppParams(
        alpha=0.9,
        wc=1e10,
        wm=2e8,
        wco=1e8,
        wmo=4e6,
        m_messages=5e4,
        b_bytes=2e9,
        n=1e6,
        p=16,
    )


@pytest.fixture()
def seq_app() -> AppParams:
    return AppParams(alpha=0.9, wc=1e10, wm=2e8, n=1e6, p=1)

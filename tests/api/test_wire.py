"""Wire-format contracts: versioned JSON round-trips and strict schemas."""

import json

import pytest

from repro.api.schemas import (
    API_VERSION,
    REQUEST_TYPES,
    RESPONSE_TYPES,
    operations,
    request_from_dict,
    response_from_dict,
)
from repro.api.types import (
    BudgetQuery,
    BudgetResponse,
    EvaluateRequest,
    EvaluateResponse,
    IsoEEResponse,
    ScheduleRequest,
    SurfaceResponse,
    SweepRequest,
    ValidateRequest,
)
from repro.core.model import ModelPoint
from repro.errors import ReproError, WireError
from repro.optimize.budget import Recommendation
from repro.optimize.contour import ContourPoint
from repro.optimize.schedule import Job

#: one fully-populated instance of every request type
SAMPLE_REQUESTS = [
    EvaluateRequest(benchmark="CG", klass="A", cluster="dori", niter=3,
                    p=16, freq_ghz=2.0),
    SweepRequest(p_values=(1, 4, 16)),
    ValidateRequest(benchmark="EP", klass="S", p=4, seed=7),
    BudgetQuery(budget_w=3000.0, p_values=(1, 2), f_values_ghz=(2.0,),
                n_factor=2.0),
    ScheduleRequest(power_budget_w=5000.0, nodes=32, max_nodes=48,
                    jobs=(Job("a", "FT", "B"), Job("b", "EP", "B", None))),
] + [
    cls() for cls in REQUEST_TYPES.values()
]

_POINT = ModelPoint(p=4, f=2.8e9, n=1e6, t1=10.0, tp=3.0, e1=100.0,
                    ep=130.0, eef=0.3, ee=1 / 1.3, speedup=10 / 3,
                    perf_efficiency=10 / 12, bottleneck="message_startup")
_REC = Recommendation(objective="max_speedup_under_power", p=8, f=2.4e9,
                      n=1e6, tp=2.0, ep=50.0, ee=0.9, avg_power=25.0,
                      speedup=5.0, bottleneck="byte_transmission",
                      feasible_count=12)

#: hand-built responses (no engine run needed for wire tests)
SAMPLE_RESPONSES = [
    EvaluateResponse(model="FT.B on SystemG", point=_POINT),
    BudgetResponse(model="FT.B on SystemG", recommendation=_REC),
    IsoEEResponse(model="FT.B on SystemG", target_ee=0.8, points=(
        ContourPoint(p=1, value=1e6, ee=1.0, axis="n", converged=True),
        ContourPoint(p=8, value=4e6, ee=0.8, axis="n", converged=True),
    )),
    SurfaceResponse(model="FT.B on SystemG", axis="f", x=(1, 4),
                    y=(1.6e9, 2.8e9), values=((1.0, 1.0), (0.9, 0.91))),
]


class TestRegistry:
    def test_every_op_has_request_and_response(self):
        assert set(REQUEST_TYPES) == set(RESPONSE_TYPES) == set(operations())
        assert len(operations()) == 17
        assert "simulate" in operations()
        assert "federate" in operations()
        assert "batch" in operations()
        assert "hetero" in operations()
        assert "metrics" in operations()
        assert "trace" in operations()
        assert "timeseries" in operations()
        assert "alerts" in operations()

    def test_request_and_response_share_the_op_name(self):
        for op, cls in REQUEST_TYPES.items():
            assert cls.op == op
            assert RESPONSE_TYPES[op].op == op


class TestRequestRoundTrip:
    @pytest.mark.parametrize(
        "req", SAMPLE_REQUESTS, ids=lambda r: f"{r.op}-{id(r) % 997}"
    )
    def test_to_dict_json_from_dict_identity(self, req):
        payload = json.loads(json.dumps(req.to_dict()))
        assert request_from_dict(payload) == req

    def test_envelope_carries_op_and_version(self):
        payload = SweepRequest().to_dict()
        assert payload["op"] == "sweep"
        assert payload["v"] == API_VERSION

    def test_missing_fields_fall_back_to_defaults(self):
        req = request_from_dict({"op": "budget", "budget_w": 100.0})
        assert req == BudgetQuery(budget_w=100.0)

    def test_tuples_become_lists_on_the_wire(self):
        payload = SweepRequest(p_values=(1, 2)).to_dict()
        assert payload["p_values"] == [1, 2]


class TestResponseRoundTrip:
    @pytest.mark.parametrize("resp", SAMPLE_RESPONSES, ids=lambda r: r.op)
    def test_to_dict_json_from_dict_identity(self, resp):
        payload = json.loads(json.dumps(resp.to_dict()))
        assert response_from_dict(payload) == resp

    def test_missing_response_field_raises(self):
        payload = SAMPLE_RESPONSES[0].to_dict()
        del payload["model"]
        with pytest.raises(WireError, match="missing"):
            response_from_dict(payload)


class TestSchemaViolations:
    def test_unknown_field_raises(self):
        with pytest.raises(WireError, match="unknown field"):
            request_from_dict({"op": "evaluate", "power": 9000})

    def test_unknown_nested_field_raises(self):
        payload = SAMPLE_RESPONSES[0].to_dict()
        payload["point"]["watts"] = 1.0
        with pytest.raises(WireError, match="unknown ModelPoint"):
            response_from_dict(payload)

    def test_bad_version_raises(self):
        with pytest.raises(WireError, match="version"):
            request_from_dict({"op": "evaluate", "v": 99})

    def test_version_zero_rejected_not_defaulted(self):
        with pytest.raises(WireError, match="version"):
            request_from_dict({"op": "evaluate", "v": 0})

    def test_unknown_op_raises(self):
        with pytest.raises(WireError, match="unknown operation"):
            request_from_dict({"op": "teleport"})

    def test_missing_op_raises(self):
        with pytest.raises(WireError, match="no 'op'"):
            request_from_dict({"p": 4})

    def test_op_mismatch_raises(self):
        with pytest.raises(WireError, match="does not match"):
            EvaluateRequest.from_dict({"op": "sweep"})

    def test_non_object_payload_raises(self):
        with pytest.raises(WireError):
            request_from_dict([1, 2, 3])

    @pytest.mark.parametrize(
        "field,value",
        [("p", "many"), ("p", 2.5), ("p", True), ("freq_ghz", "fast"),
         ("benchmark", 7)],
    )
    def test_mistyped_field_raises(self, field, value):
        with pytest.raises(WireError, match=field):
            request_from_dict({"op": "evaluate", field: value})

    def test_wire_error_is_a_repro_error(self):
        assert issubclass(WireError, ReproError)

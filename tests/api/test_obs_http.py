"""Observability over the wire: /metrics, trace IDs, enriched /healthz."""

from __future__ import annotations

import json
import logging
import os
import urllib.error
import urllib.request

import pytest

from repro.api.schemas import API_VERSION
from repro.api.service import cache_info, dispatch
from repro.api.types import BudgetQuery, MetricsRequest
from repro.obs import metrics as obs_metrics

from test_server import _get, _post, _spawn_server, _stop_server


@pytest.fixture(scope="module")
def live_server():
    loop, thread, base = _spawn_server()
    yield base
    _stop_server(loop, thread)


def _get_raw(base: str, path: str, headers=None):
    request = urllib.request.Request(f"{base}{path}", headers=headers or {})
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, dict(response.headers), response.read()


class TestMetricsEndpoint:
    def test_scrape_smoke(self, live_server):
        _post(live_server, "/v1/budget", {"budget_w": 3000.0})
        status, headers, body = _get_raw(live_server, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == obs_metrics.CONTENT_TYPE
        text = body.decode()
        for family in (
            "repro_http_requests_total",
            "repro_dispatch_total",
            "repro_dispatch_latency_seconds_bucket",
            "repro_span_duration_seconds",
            "repro_cache_entries",
            "repro_grid_store_events_total",
        ):
            assert family in text, family
        assert 'repro_dispatch_total{op="budget"}' in text

    def test_counters_grow_with_traffic(self, live_server):
        def scrape_value(name: str) -> float:
            _, _, body = _get_raw(live_server, "/metrics")
            for line in body.decode().splitlines():
                if line.startswith(name + " "):
                    return float(line.split()[-1])
            return 0.0

        before = scrape_value("repro_http_bytes_written_total")
        _post(live_server, "/v1/evaluate", {"p": 16})
        after = scrape_value("repro_http_bytes_written_total")
        assert after > before

    def test_post_to_metrics_is_405(self, live_server):
        status, payload = _post(live_server, "/metrics", {})
        assert status == 405
        assert payload["error"]["type"] == "WireError"
        assert "trace_id" in payload

    def test_wire_op_matches_endpoint_families(self, live_server):
        """POST /v1/metrics returns the same exposition as GET /metrics."""
        status, payload = _post(live_server, "/v1/metrics", {})
        assert status == 200
        assert payload["op"] == "metrics" and payload["v"] == API_VERSION
        _, _, body = _get_raw(live_server, "/metrics")

        def families(text: str) -> set[str]:
            return {
                line.split()[2] for line in text.splitlines()
                if line.startswith("# TYPE")
            }

        assert families(payload["text"]) == families(body.decode())

    def test_metrics_dispatch_is_never_cached(self):
        """Two local metrics dispatches see fresh counter values."""
        first = dispatch(MetricsRequest())
        dispatch(BudgetQuery(budget_w=2500.0))
        second = dispatch(MetricsRequest())
        assert first.text != second.text


class TestTraceIds:
    def test_every_response_carries_a_request_id_header(self, live_server):
        _, headers, _ = _get_raw(live_server, "/metrics")
        assert len(headers["X-Request-Id"]) == 16

    def test_inbound_request_id_is_honored(self, live_server):
        _, headers, _ = _get_raw(
            live_server, "/metrics",
            headers={"X-Request-Id": "client-chose-this"},
        )
        assert headers["X-Request-Id"] == "client-chose-this"

    def test_error_payloads_carry_the_trace_id(self, live_server):
        request = urllib.request.Request(
            f"{live_server}/v1/nope", data=b"{}",
            headers={"X-Request-Id": "deadbeef00000000"}, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=60)
        assert err.value.code == 404
        payload = json.loads(err.value.read())
        assert payload["trace_id"] == "deadbeef00000000"
        assert err.value.headers["X-Request-Id"] == "deadbeef00000000"
        # the error object itself stays the bare {type, message} shape —
        # batch item slots must remain byte-identical to single POSTs
        assert set(payload["error"]) == {"type", "message"}

    def test_success_payloads_stay_clean(self, live_server):
        status, payload = _post(live_server, "/v1/evaluate", {"p": 16})
        assert status == 200
        assert "trace_id" not in payload

    def test_unexpected_500_is_logged_with_traceback(self, caplog,
                                                     monkeypatch):
        """An engine crash produces one ERROR record and a traced 500."""
        import repro.api.server as server_mod

        def explode(request):
            raise RuntimeError("engine fell over")

        monkeypatch.setattr(server_mod, "dispatch", explode)
        loop, thread, base = _spawn_server()
        try:
            with caplog.at_level(logging.ERROR, logger="repro.http"):
                status, payload = _post(base, "/v1/evaluate", {"p": 16})
        finally:
            _stop_server(loop, thread)
        assert status == 500
        assert payload["error"]["type"] == "RuntimeError"
        assert len(payload["trace_id"]) == 16
        records = [r for r in caplog.records
                   if r.getMessage() == "unhandled server error"]
        assert len(records) == 1
        assert records[0].error_type == "RuntimeError"
        assert records[0].trace_id == payload["trace_id"]
        assert records[0].exc_info[0] is RuntimeError


class TestHealthz:
    def test_enriched_fields(self, live_server):
        _post(live_server, "/v1/evaluate", {"p": 16})
        status, payload = _get(live_server, "/healthz")
        assert status == 200
        assert payload["pid"] == os.getpid()
        assert payload["uptime_s"] >= 0
        assert payload["requests_total"] >= 1
        assert payload["errors_total"] >= 0
        assert payload["requests_total"] >= payload["errors_total"]

    def test_request_count_advances(self, live_server):
        _, before = _get(live_server, "/healthz")
        _post(live_server, "/v1/evaluate", {"p": 16})
        _, after = _get(live_server, "/healthz")
        # the healthz GETs themselves count too, so the gap is >= 2
        assert after["requests_total"] >= before["requests_total"] + 2


class TestConsistency:
    def test_metrics_agree_with_cache_info(self):
        """The registry re-export equals the cache layer's own census."""
        dispatch(BudgetQuery(budget_w=2750.0))
        text = dispatch(MetricsRequest()).text
        info = cache_info()

        def metric(line_prefix: str) -> float:
            for line in text.splitlines():
                if line.startswith(line_prefix + " "):
                    return float(line.split()[-1])
            raise AssertionError(f"no series {line_prefix!r}")

        assert metric('repro_cache_hits_total{cache="responses"}') == (
            info["responses"].hits
        )
        assert metric('repro_cache_misses_total{cache="responses"}') == (
            info["responses"].misses
        )
        assert metric('repro_cache_entries{cache="responses"}') == (
            info["responses"].currsize
        )
        store = info["grid_store"]
        assert metric('repro_grid_store_events_total{event="misses"}') == (
            store["misses"]
        )
        assert metric('repro_cache_entries{cache="grid_store"}') == (
            store["entries"]
        )
        assert metric('repro_grid_store_bytes{kind="homogeneous"}') == (
            store["bytes"]
        )
        assert metric(
            'repro_grid_store_events_total{event="hetero_misses"}'
        ) == store["hetero_misses"]

"""Observability over the wire: /metrics, trace IDs, enriched /healthz."""

from __future__ import annotations

import json
import logging
import os
import urllib.error
import urllib.request

import pytest

from repro.api.schemas import API_VERSION
from repro.api.service import cache_info, dispatch
from repro.api.types import BudgetQuery, MetricsRequest
from repro.obs import metrics as obs_metrics

from test_server import _get, _post, _spawn_server, _stop_server


@pytest.fixture(scope="module")
def live_server():
    loop, thread, base = _spawn_server()
    yield base
    _stop_server(loop, thread)


def _get_raw(base: str, path: str, headers=None):
    request = urllib.request.Request(f"{base}{path}", headers=headers or {})
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, dict(response.headers), response.read()


class TestMetricsEndpoint:
    def test_scrape_smoke(self, live_server):
        _post(live_server, "/v1/budget", {"budget_w": 3000.0})
        status, headers, body = _get_raw(live_server, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == obs_metrics.CONTENT_TYPE
        text = body.decode()
        for family in (
            "repro_http_requests_total",
            "repro_dispatch_total",
            "repro_dispatch_latency_seconds_bucket",
            "repro_span_duration_seconds",
            "repro_cache_entries",
            "repro_grid_store_events_total",
        ):
            assert family in text, family
        assert 'repro_dispatch_total{op="budget"}' in text

    def test_counters_grow_with_traffic(self, live_server):
        def scrape_value(name: str) -> float:
            _, _, body = _get_raw(live_server, "/metrics")
            for line in body.decode().splitlines():
                if line.startswith(name + " "):
                    return float(line.split()[-1])
            return 0.0

        before = scrape_value("repro_http_bytes_written_total")
        _post(live_server, "/v1/evaluate", {"p": 16})
        after = scrape_value("repro_http_bytes_written_total")
        assert after > before

    def test_post_to_metrics_is_405(self, live_server):
        status, payload = _post(live_server, "/metrics", {})
        assert status == 405
        assert payload["error"]["type"] == "WireError"
        assert "trace_id" in payload

    def test_wire_op_matches_endpoint_families(self, live_server):
        """POST /v1/metrics returns the same exposition as GET /metrics."""
        status, payload = _post(live_server, "/v1/metrics", {})
        assert status == 200
        assert payload["op"] == "metrics" and payload["v"] == API_VERSION
        _, _, body = _get_raw(live_server, "/metrics")

        def families(text: str) -> set[str]:
            return {
                line.split()[2] for line in text.splitlines()
                if line.startswith("# TYPE")
            }

        assert families(payload["text"]) == families(body.decode())

    def test_metrics_dispatch_is_never_cached(self):
        """Two local metrics dispatches see fresh counter values."""
        first = dispatch(MetricsRequest())
        dispatch(BudgetQuery(budget_w=2500.0))
        second = dispatch(MetricsRequest())
        assert first.text != second.text


class TestTraceIds:
    def test_every_response_carries_a_request_id_header(self, live_server):
        _, headers, _ = _get_raw(live_server, "/metrics")
        assert len(headers["X-Request-Id"]) == 16

    def test_inbound_request_id_is_honored(self, live_server):
        _, headers, _ = _get_raw(
            live_server, "/metrics",
            headers={"X-Request-Id": "client-chose-this"},
        )
        assert headers["X-Request-Id"] == "client-chose-this"

    def test_error_payloads_carry_the_trace_id(self, live_server):
        request = urllib.request.Request(
            f"{live_server}/v1/nope", data=b"{}",
            headers={"X-Request-Id": "deadbeef00000000"}, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=60)
        assert err.value.code == 404
        payload = json.loads(err.value.read())
        assert payload["trace_id"] == "deadbeef00000000"
        assert err.value.headers["X-Request-Id"] == "deadbeef00000000"
        # the error object itself stays the bare {type, message} shape —
        # batch item slots must remain byte-identical to single POSTs
        assert set(payload["error"]) == {"type", "message"}

    def test_success_payloads_stay_clean(self, live_server):
        status, payload = _post(live_server, "/v1/evaluate", {"p": 16})
        assert status == 200
        assert "trace_id" not in payload

    def test_unexpected_500_is_logged_with_traceback(self, caplog,
                                                     monkeypatch):
        """An engine crash produces one ERROR record and a traced 500."""
        import repro.api.server as server_mod

        def explode(request):
            raise RuntimeError("engine fell over")

        monkeypatch.setattr(server_mod, "dispatch", explode)
        loop, thread, base = _spawn_server()
        try:
            with caplog.at_level(logging.ERROR, logger="repro.http"):
                status, payload = _post(base, "/v1/evaluate", {"p": 16})
        finally:
            _stop_server(loop, thread)
        assert status == 500
        assert payload["error"]["type"] == "RuntimeError"
        assert len(payload["trace_id"]) == 16
        records = [r for r in caplog.records
                   if r.getMessage() == "unhandled server error"]
        assert len(records) == 1
        assert records[0].error_type == "RuntimeError"
        assert records[0].trace_id == payload["trace_id"]
        assert records[0].exc_info[0] is RuntimeError


class TestHealthz:
    def test_enriched_fields(self, live_server):
        _post(live_server, "/v1/evaluate", {"p": 16})
        status, payload = _get(live_server, "/healthz")
        assert status == 200
        assert payload["pid"] == os.getpid()
        assert payload["uptime_s"] >= 0
        assert payload["requests_total"] >= 1
        assert payload["errors_total"] >= 0
        assert payload["requests_total"] >= payload["errors_total"]

    def test_request_count_advances(self, live_server):
        _, before = _get(live_server, "/healthz")
        _post(live_server, "/v1/evaluate", {"p": 16})
        _, after = _get(live_server, "/healthz")
        # the healthz GETs themselves count too, so the gap is >= 2
        assert after["requests_total"] >= before["requests_total"] + 2


def _post_with_id(base: str, path: str, body, request_id: str):
    request = urllib.request.Request(
        f"{base}{path}", data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json",
                 "X-Request-Id": request_id},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, json.loads(response.read())


class TestTraceEndpoint:
    def test_trace_of_a_prior_request(self, live_server):
        """A served request's X-Request-Id queries back its span tree."""
        rid = "trace-me-00000001"
        status, _ = _post_with_id(
            live_server, "/v1/budget",
            {"benchmark": "FT", "budget_w": 3100.0}, rid,
        )
        assert status == 200
        status, payload = _post(live_server, "/v1/trace", {"trace_id": rid})
        assert status == 200
        assert payload["op"] == "trace" and payload["v"] == API_VERSION
        assert payload["trace_id"] == rid
        names = [s["name"] for s in payload["spans"]]
        assert "dispatch.budget" in names
        roots = [s for s in payload["spans"] if s["parent_id"] is None]
        assert len(roots) == 1 and roots[0]["name"] == "dispatch.budget"
        assert payload["duration_s"] > 0.0
        assert payload["dropped"] == 0

    def test_batch_spans_land_in_one_waterfall(self, live_server):
        """Batch items nest under the batch dispatch span — one tree."""
        rid = "trace-me-batch-01"
        status, _ = _post_with_id(
            live_server, "/v1/batch",
            {"items": [{"op": "evaluate", "p": 8},
                       {"op": "evaluate", "p": 16}]},
            rid,
        )
        assert status == 200
        status, payload = _post(live_server, "/v1/trace", {"trace_id": rid})
        assert status == 200
        spans = payload["spans"]
        by_id = {s["span_id"]: s for s in spans}
        roots = [s for s in spans if s["parent_id"] is None]
        assert len(roots) == 1 and roots[0]["name"] == "dispatch.batch"
        items = [s for s in spans if s["name"] == "batch.evaluate"]
        assert len(items) == 2
        for item in items:
            assert by_id[item["parent_id"]]["name"] == "dispatch.batch"

    def test_unknown_trace_is_a_structured_error(self, live_server):
        status, payload = _post(
            live_server, "/v1/trace", {"trace_id": "never-served"}
        )
        assert status == 400
        assert payload["error"]["type"] == "ParameterError"
        assert "not retained" in payload["error"]["message"]

    def test_empty_trace_id_is_rejected(self, live_server):
        status, payload = _post(live_server, "/v1/trace", {})
        assert status == 400
        assert payload["error"]["type"] == "ParameterError"


class TestTimeSeriesEndpoint:
    def test_rollup_round_trip(self, live_server):
        _post(live_server, "/v1/evaluate", {"p": 16})
        status, payload = _post(
            live_server, "/v1/timeseries",
            {"window_s": 600.0, "prefix": "repro_http"},
        )
        assert status == 200
        assert payload["op"] == "timeseries" and payload["v"] == API_VERSION
        assert payload["window_s"] == 600.0
        assert payload["samples"] >= 1
        names = {s["name"] for s in payload["series"]}
        assert names  # the handler samples before rolling up
        assert all(n.startswith("repro_http") for n in names)
        assert "repro_http_requests_total" in names

    def test_bad_window_is_rejected(self, live_server):
        status, payload = _post(
            live_server, "/v1/timeseries", {"window_s": 0.0}
        )
        assert status == 400
        assert payload["error"]["type"] == "ParameterError"


class TestAlertsEndpoint:
    def test_get_route_matches_wire_op(self, live_server):
        """GET /alerts is the same evaluation as POST /v1/alerts."""
        get_status, get_payload = _get(live_server, "/alerts")
        post_status, post_payload = _post(live_server, "/v1/alerts", {})
        assert get_status == post_status == 200
        assert get_payload["op"] == post_payload["op"] == "alerts"
        assert get_payload["v"] == post_payload["v"] == API_VERSION
        assert set(get_payload) == set(post_payload)
        names = lambda p: [a["rule"] for a in p["alerts"]]  # noqa: E731
        assert names(get_payload) == names(post_payload)

    def test_default_rules_cover_the_serving_stack(self, live_server):
        _, payload = _get(live_server, "/alerts")
        rules = {a["rule"]: a for a in payload["alerts"]}
        assert "http-latency-p99" in rules
        assert "http-error-rate" in rules
        assert "http-availability-burn" in rules
        assert "sim-slo-violations" in rules
        for alert in payload["alerts"]:
            assert alert["state"] in ("ok", "pending", "firing")

    def test_post_to_alerts_route_is_405(self, live_server):
        status, payload = _post(live_server, "/alerts", {})
        assert status == 405
        assert payload["error"]["type"] == "WireError"

    def test_impossible_slo_sim_drives_firing(self, live_server):
        """A seeded run that cannot meet its SLO fires the gauge rule."""
        scenario = {
            "shards": [
                {"name": "alpha", "cluster": "systemg", "nodes": 16,
                 "power_envelope_w": 4000.0},
            ],
            "budget_w": 4000.0,
            "demand": {"kind": "poisson", "rate_per_s": 0.05,
                       "jobs": [{"name": "ft", "benchmark": "FT",
                                 "klass": "B"}]},
            "horizon_s": 400.0,
            "seed": 42,
            "slo": {"deadline_s": 0.001},
        }
        status, payload = _post(
            live_server, "/v1/simulate",
            {"scenario": scenario},
        )
        assert status == 200
        assert payload["report"]["slo_violations"] > 0

        status, alerts = _get(live_server, "/alerts")
        assert status == 200
        sim = next(
            a for a in alerts["alerts"] if a["rule"] == "sim-slo-violations"
        )
        assert sim["state"] == "firing"
        assert sim["value"] > 0.0
        assert alerts["firing"] >= 1


class TestConsistency:
    def test_metrics_agree_with_cache_info(self):
        """The registry re-export equals the cache layer's own census."""
        dispatch(BudgetQuery(budget_w=2750.0))
        text = dispatch(MetricsRequest()).text
        info = cache_info()

        def metric(line_prefix: str) -> float:
            for line in text.splitlines():
                if line.startswith(line_prefix + " "):
                    return float(line.split()[-1])
            raise AssertionError(f"no series {line_prefix!r}")

        assert metric('repro_cache_hits_total{cache="responses"}') == (
            info["responses"].hits
        )
        assert metric('repro_cache_misses_total{cache="responses"}') == (
            info["responses"].misses
        )
        assert metric('repro_cache_entries{cache="responses"}') == (
            info["responses"].currsize
        )
        store = info["grid_store"]
        assert metric('repro_grid_store_events_total{event="misses"}') == (
            store["misses"]
        )
        assert metric('repro_cache_entries{cache="grid_store"}') == (
            store["entries"]
        )
        assert metric('repro_grid_store_bytes{kind="homogeneous"}') == (
            store["bytes"]
        )
        assert metric(
            'repro_grid_store_events_total{event="hetero_misses"}'
        ) == store["hetero_misses"]

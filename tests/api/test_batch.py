"""The batch operation: wire shape, executor semantics, dispatch parity."""

import json

import pytest

from repro.api.schemas import request_from_dict, response_from_dict
from repro.api.service import (
    MAX_BATCH_ITEMS,
    cache_info,
    clear_caches,
    dispatch,
)
from repro.api.types import (
    API_VERSION,
    BatchItem,
    BatchRequest,
    BatchResponse,
    BudgetQuery,
    DeadlineQuery,
    EvaluateRequest,
    IsoEEQuery,
    ParetoQuery,
    ScheduleRequest,
    SurfaceRequest,
    SweepRequest,
)
from repro.errors import ParameterError, ReproError, WireError
from repro.optimize.schedule import Job

#: a deliberately mixed item set: overlapping grids, several op kinds,
#: and two items that must fail (negative budget; impossible deadline)
MIXED_ITEMS = (
    BudgetQuery(benchmark="FT", budget_w=3000.0),
    BudgetQuery(benchmark="FT", budget_w=2000.0),
    BudgetQuery(benchmark="CG", budget_w=2500.0),
    BudgetQuery(benchmark="FT", budget_w=-3.0),
    DeadlineQuery(benchmark="FT", deadline_s=30.0),
    DeadlineQuery(benchmark="FT", deadline_s=1e-9),
    EvaluateRequest(p=16),
    SweepRequest(p_values=(1, 4, 16)),
    ParetoQuery(benchmark="FT"),
    IsoEEQuery(benchmark="EP", target_ee=0.9, p_values=(2, 8, 32)),
    SurfaceRequest(axis="f", p_values=(1, 4, 16)),
    ScheduleRequest(
        power_budget_w=4000.0,
        jobs=(Job("a", "FT", "W"), Job("b", "EP", "W")),
    ),
)


class TestWire:
    def test_request_round_trip(self):
        req = BatchRequest(items=MIXED_ITEMS)
        payload = json.loads(json.dumps(req.to_dict()))
        assert payload["op"] == "batch" and payload["v"] == API_VERSION
        assert request_from_dict(payload) == req

    def test_items_carry_their_own_envelope(self):
        payload = BatchRequest(items=MIXED_ITEMS).to_dict()
        for item in payload["items"]:
            assert item["op"] in {
                "budget", "deadline", "evaluate", "sweep", "pareto",
                "isoee", "surface", "schedule",
            }
            assert item["v"] == API_VERSION

    def test_response_round_trip(self):
        resp = dispatch(BatchRequest(items=MIXED_ITEMS[:4]))
        payload = json.loads(json.dumps(resp.to_dict()))
        assert response_from_dict(payload) == resp

    def test_item_without_op_rejected(self):
        with pytest.raises(WireError, match="op"):
            BatchRequest.from_dict(
                {"op": "batch", "items": [{"budget_w": 100.0}]}
            )

    def test_nested_batch_rejected(self):
        with pytest.raises(WireError, match="nest"):
            BatchRequest.from_dict(
                {"op": "batch", "items": [{"op": "batch", "items": []}]}
            )
        with pytest.raises(WireError, match="non-batch"):
            # typed nesting falls under the same rule as wire nesting
            request_from_dict({"op": "batch", "items": [BatchRequest()]})

    def test_non_object_item_rejected(self):
        with pytest.raises(WireError, match="request object"):
            BatchRequest.from_dict({"op": "batch", "items": [42]})


class TestExecutor:
    def test_empty_batch_is_an_error(self):
        with pytest.raises(ParameterError, match="at least one item"):
            dispatch(BatchRequest(items=()))

    def test_item_ceiling(self):
        items = tuple(
            EvaluateRequest(p=k + 1) for k in range(MAX_BATCH_ITEMS + 1)
        )
        with pytest.raises(ParameterError, match="ceiling"):
            dispatch(BatchRequest(items=items))

    def test_errors_are_slotted_not_raised(self):
        resp = dispatch(BatchRequest(items=MIXED_ITEMS))
        assert isinstance(resp, BatchResponse)
        assert len(resp.items) == len(MIXED_ITEMS)
        bad = [k for k, item in enumerate(resp.items) if not item.ok]
        assert bad == [3, 5]  # negative budget; impossible deadline
        assert resp.items[3].error.type == "ParameterError"
        assert "positive" in resp.items[3].error.message
        assert "deadline" in resp.items[5].error.message

    def test_grouping_evaluates_each_grid_once(self):
        clear_caches()
        before = cache_info()["grid_store"]["misses"]  # counters cumulate
        items = tuple(
            BudgetQuery(benchmark="FT", budget_w=1500.0 + 100.0 * k)
            for k in range(20)
        )
        dispatch(BatchRequest(items=items))
        after = cache_info()["grid_store"]["misses"]
        assert after - before == 1  # 20 budgets, one grid evaluation

    def test_unknown_selector_errors_every_item_in_the_group(self):
        resp = dispatch(BatchRequest(items=(
            BudgetQuery(cluster="nonesuch", budget_w=100.0),
            BudgetQuery(cluster="nonesuch", budget_w=200.0),
        )))
        assert [item.ok for item in resp.items] == [False, False]
        for item in resp.items:
            assert "nonesuch" in item.error.message


class TestDispatchParity:
    """The acceptance property: batch slots == individual dispatches."""

    @pytest.mark.parametrize("index", range(len(MIXED_ITEMS)))
    def test_itemwise_payload_identity(self, index):
        batch = dispatch(BatchRequest(items=MIXED_ITEMS))
        item, slot = MIXED_ITEMS[index], batch.items[index]
        try:
            single = dispatch(item)
        except ReproError as exc:
            assert not slot.ok
            assert slot.error.type == type(exc).__name__
            assert slot.error.message == str(exc)
        else:
            assert slot.ok
            assert slot.response.to_dict() == single.to_dict()

    def test_parity_survives_cold_caches_in_either_order(self):
        """Batch-then-single and single-then-batch agree bit for bit."""
        clear_caches()
        batch_first = dispatch(BatchRequest(items=MIXED_ITEMS)).to_dict()
        clear_caches()
        singles = []
        for item in MIXED_ITEMS:
            try:
                singles.append(("ok", dispatch(item).to_dict()))
            except ReproError as exc:
                singles.append((type(exc).__name__, str(exc)))
        batch_second = dispatch(BatchRequest(items=MIXED_ITEMS)).to_dict()
        assert batch_first == batch_second
        for slot, outcome in zip(batch_first["items"], singles):
            if outcome[0] == "ok":
                assert slot["ok"] and slot["response"] == outcome[1]
            else:
                assert not slot["ok"]
                assert slot["error"] == {
                    "type": outcome[0], "message": outcome[1]
                }

    def test_batch_responses_memoise_like_any_other(self):
        req = BatchRequest(items=MIXED_ITEMS[:3])
        assert dispatch(req) is dispatch(req)


class TestBatchItemShape:
    def test_ok_slots_carry_responses_only(self):
        resp = dispatch(BatchRequest(items=MIXED_ITEMS))
        for slot in resp.items:
            assert isinstance(slot, BatchItem)
            if slot.ok:
                assert slot.response is not None and slot.error is None
            else:
                assert slot.response is None and slot.error is not None

    def test_encoded_slots_always_carry_all_three_fields(self):
        payload = dispatch(BatchRequest(items=MIXED_ITEMS)).to_dict()
        for slot in payload["items"]:
            assert set(slot) == {"ok", "response", "error"}

"""Multi-worker serving pool: real forks, one port, shared grid plane.

Everything here drives live :class:`~repro.api.pool.WorkerPool`
instances over real sockets: worker distribution (distinct pids), the
``/healthz`` pool block, wire byte-identity against in-process dispatch,
cross-process grid serving via the shared plane, crash respawn, and
shm-clean shutdown.  Skipped wholesale where POSIX shared memory is
unavailable.
"""

import http.client
import json
import os
import signal
import time

import pytest

from repro.api.pool import WorkerPool, health_block, serve_pool
from repro.api.service import dispatch
from repro.api.types import BudgetQuery, EvaluateRequest
from repro.errors import ReproError
from repro.optimize.shm import HAVE_SHARED_MEMORY, shm_dir_entries

pytestmark = pytest.mark.skipif(
    not HAVE_SHARED_MEMORY,
    reason="needs POSIX shared memory (multiprocessing.shared_memory + fcntl)",
)


def _get(port: int, path: str) -> tuple[int, bytes]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=20)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _post(port: int, op: str, payload: dict) -> tuple[int, bytes]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        conn.request(
            "POST", f"/v1/{op}", json.dumps(payload),
            {"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _wait_healthy(port: int, timeout_s: float = 20.0) -> dict:
    deadline = time.monotonic() + timeout_s
    while True:
        try:
            status, body = _get(port, "/healthz")
            if status == 200:
                return json.loads(body)
        except OSError:
            pass
        if time.monotonic() > deadline:
            raise AssertionError(f"pool on :{port} never became healthy")
        time.sleep(0.05)


@pytest.fixture(scope="module")
def pool():
    pool = WorkerPool("127.0.0.1", 0, 2, sample_every_s=None, quiet=True)
    pool.start()
    _wait_healthy(pool.port)
    try:
        yield pool
    finally:
        pool.stop()


class TestServing:
    def test_health_reports_the_whole_pool(self, pool):
        health = _wait_healthy(pool.port)
        block = health["pool"]
        assert block["workers"] == 2
        assert block["so_reuseport"] == pool.so_reuseport
        assert len(block["members"]) == 2
        assert all(member["up"] for member in block["members"])
        assert {m["slot"] for m in block["members"]} == {0, 1}
        member_pids = {m["pid"] for m in block["members"]}
        assert member_pids == set(pool.pids)

    def test_fresh_connections_reach_both_workers(self, pool):
        seen = set()
        for _ in range(300):
            _, body = _get(pool.port, "/healthz")
            seen.add(json.loads(body)["pid"])
            if len(seen) == 2:
                break
        assert seen == set(pool.pids), f"only saw {seen} of {pool.pids}"

    def test_wire_bytes_match_in_process_dispatch(self, pool):
        request = EvaluateRequest(benchmark="FT", p=16)
        expected = json.dumps(dispatch(request).to_dict()).encode()
        answers = set()
        for _ in range(10):  # spread across workers; all must agree
            status, body = _post(
                pool.port, "evaluate", {"benchmark": "FT", "p": 16}
            )
            assert status == 200
            answers.add(body)
        assert answers == {expected}

    def test_grid_computed_in_one_worker_serves_the_other(self, pool):
        """Cross-process counters prove shared-plane serving."""
        expected = json.dumps(dispatch(
            BudgetQuery(benchmark="CG", budget_w=3500.0)
        ).to_dict()).encode()
        for _ in range(150):
            status, body = _post(
                pool.port, "budget",
                {"benchmark": "CG", "budget_w": 3500.0},
            )
            assert status == 200
            assert body == expected
            _, health = _get(pool.port, "/healthz")
            totals = json.loads(health)["pool"]["totals"]
            if (
                totals["shared_published"] >= 1
                and totals["shared_hits"] + totals["shared_superset_hits"]
                >= 1
            ):
                break
        else:
            raise AssertionError(
                f"no cross-worker shared grid traffic: {totals}"
            )

    def test_metrics_export_per_pid_pool_gauges(self, pool):
        status, body = _get(pool.port, "/metrics")
        assert status == 200
        text = body.decode()
        assert "repro_pool_workers 2" in text
        for pid in pool.pids:
            assert f'repro_pool_worker_requests_total{{pid="{pid}"}}' in text
        assert "repro_pool_worker_up{" in text

    def test_healthz_caches_include_the_shared_block(self, pool):
        health = _wait_healthy(pool.port)
        shared = health["caches"]["grid_store"]["shared"]
        assert shared["plane"] == 1
        for key in ("hits", "superset_hits", "misses", "published",
                    "shared_bytes", "attached_segments", "segments"):
            assert key in shared


class TestLifecycle:
    def test_killed_worker_is_respawned(self, pool):
        victim = pool.pids[0]
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + 15
        while victim in pool.pids or len(pool.pids) < 2:
            pool.poll()
            if time.monotonic() > deadline:
                raise AssertionError("dead worker was not respawned")
            time.sleep(0.05)
        assert pool.respawns >= 1
        health = _wait_healthy(pool.port)
        assert len(health["pool"]["members"]) == 2
        # the respawned worker still serves shared-plane requests
        status, _ = _post(pool.port, "evaluate", {"p": 4})
        assert status == 200

    def test_stop_reaps_workers_and_unlinks_all_shm(self):
        pool = WorkerPool(
            "127.0.0.1", 0, 2, sample_every_s=None, quiet=True
        )
        pool.start()
        _wait_healthy(pool.port)
        name = pool._plane.name
        assert any(name in entry for entry in shm_dir_entries())
        pids = pool.pids
        pool.stop()
        assert not any(name in entry for entry in shm_dir_entries()), (
            "pool shutdown must unlink its plane and board segments"
        )
        for pid in pids:  # every worker reaped — no zombies, no orphans
            with pytest.raises(OSError):
                os.kill(pid, 0)
        pool.stop()  # idempotent

    def test_inherited_socket_fallback_serves(self):
        """reuse_port=False: all workers accept from one parent socket."""
        pool = WorkerPool(
            "127.0.0.1", 0, 2, sample_every_s=None, quiet=True,
            reuse_port=False,
        )
        pool.start()
        try:
            assert not pool.so_reuseport
            health = _wait_healthy(pool.port)
            assert len(health["pool"]["members"]) == 2
            assert not health["pool"]["so_reuseport"]
            status, _ = _post(pool.port, "evaluate", {"p": 8})
            assert status == 200
        finally:
            pool.stop()

    def test_single_worker_pool_is_valid(self):
        pool = WorkerPool(
            "127.0.0.1", 0, 1, sample_every_s=None, quiet=True
        )
        pool.start()
        try:
            health = _wait_healthy(pool.port)
            assert health["pool"]["workers"] == 1
            assert len(health["pool"]["members"]) == 1
        finally:
            pool.stop()

    def test_worker_bounds_are_validated(self):
        with pytest.raises(ReproError):
            WorkerPool("127.0.0.1", 0, 0)
        with pytest.raises(ReproError):
            WorkerPool("127.0.0.1", 0, 1000)

    def test_port_conflict_is_a_clean_error(self, pool):
        with pytest.raises(ReproError, match="cannot listen"):
            conflicting = WorkerPool(
                "127.0.0.1", pool.port, 1, quiet=True, reuse_port=False
            )
            conflicting.start()


class TestServePoolEntry:
    def test_serve_pool_runs_and_stops_cleanly(self):
        """The CLI entry serves, then drains on a stop request."""
        import threading

        ready = threading.Event()
        holder: dict = {}

        def run():
            holder["rc"] = serve_pool(
                "127.0.0.1", 0, 2, sample_every_s=None, quiet=True,
                ready=ready,
            )

        thread = threading.Thread(target=run)
        thread.start()
        try:
            assert ready.wait(30), "serve_pool never became ready"
            port = ready.address[1]
            health = _wait_healthy(port)
            assert health["pool"]["workers"] == 2
            assert health["pool"]["pid"] != os.getpid()
            plane_name = ready.pool._plane.name
        finally:
            ready.pool.request_stop()  # the signal handler's code path
            thread.join(timeout=30)
        assert not thread.is_alive(), "serve_pool did not stop"
        assert holder["rc"] == 0
        assert not any(
            plane_name in entry for entry in shm_dir_entries()
        ), "serve_pool teardown must unlink its shm"

"""Wire v7 retained telemetry: trace/timeseries/alerts round-trips."""

from __future__ import annotations

import json

import pytest

from repro.api.schemas import (
    API_VERSION,
    request_from_dict,
    response_from_dict,
)
from repro.api.service import dispatch
from repro.api.types import (
    AlertsRequest,
    BatchRequest,
    BudgetQuery,
    EvaluateRequest,
    MetricsRequest,
    TimeSeriesRequest,
    TraceRequest,
)
from repro.errors import ParameterError
from repro.obs import trace_context, trace_store


def _wire(record):
    """Encode → JSON → decode, as a network hop would."""
    return json.loads(json.dumps(record.to_dict()))


class TestRequestParsing:
    def test_trace_request_round_trips(self):
        req = request_from_dict({"op": "trace", "trace_id": "abc123"})
        assert isinstance(req, TraceRequest)
        assert req.trace_id == "abc123"
        assert request_from_dict(_wire(req)) == req

    def test_timeseries_request_defaults(self):
        req = request_from_dict({"op": "timeseries"})
        assert isinstance(req, TimeSeriesRequest)
        assert req.window_s == 60.0 and req.prefix == ""
        req = request_from_dict(
            {"op": "timeseries", "window_s": 30, "prefix": "repro_http"}
        )
        assert req.window_s == 30.0 and req.prefix == "repro_http"

    def test_alerts_request_is_bare(self):
        req = request_from_dict({"op": "alerts"})
        assert isinstance(req, AlertsRequest)
        assert request_from_dict(_wire(req)) == req

    def test_metrics_request_filter_field(self):
        req = request_from_dict({"op": "metrics", "filter": "repro_sim"})
        assert isinstance(req, MetricsRequest)
        assert req.filter == "repro_sim"


class TestTraceDispatch:
    def test_retained_trace_round_trips_as_a_tree(self):
        from repro.api.service import clear_caches

        clear_caches()  # a cold dispatch records engine child spans
        with trace_context("wire-trace-1"):
            dispatch(BudgetQuery(budget_w=3000.0))
        resp = dispatch(TraceRequest(trace_id="wire-trace-1"))
        assert _wire(resp)["v"] == API_VERSION
        assert resp.trace_id == "wire-trace-1"
        names = [s.name for s in resp.spans]
        assert "dispatch.budget" in names
        roots = [s for s in resp.spans if s.parent_id is None]
        assert roots and roots[0].name == "dispatch.budget"
        # children carry the root's span id
        root_id = roots[0].span_id
        assert any(s.parent_id == root_id for s in resp.spans)

        decoded = response_from_dict(_wire(resp))
        assert decoded == resp
        # SpanNodes encode as JSON objects, not arrays
        assert isinstance(_wire(resp)["spans"][0], dict)

    def test_batch_items_nest_under_the_batch_span(self):
        with trace_context("wire-trace-batch"):
            dispatch(BatchRequest(items=(
                EvaluateRequest(p=8),
                BudgetQuery(budget_w=3000.0),
                BudgetQuery(budget_w=3500.0),
            )))
        resp = dispatch(TraceRequest(trace_id="wire-trace-batch"))
        by_id = {s.span_id: s for s in resp.spans}
        roots = [s for s in resp.spans if s.parent_id is None]
        assert len(roots) == 1 and roots[0].name == "dispatch.batch"
        item_spans = [s for s in resp.spans if s.name.startswith("batch.")]
        # the two budget items share one constraint group → one span
        assert sorted(s.name for s in item_spans) == [
            "batch.budget", "batch.evaluate",
        ]
        for item in item_spans:
            assert by_id[item.parent_id].name == "dispatch.batch"

    def test_missing_trace_id_is_a_parameter_error(self):
        with pytest.raises(ParameterError, match="trace_id"):
            dispatch(TraceRequest())

    def test_unknown_trace_is_a_parameter_error_with_census(self):
        with pytest.raises(ParameterError, match="not retained"):
            dispatch(TraceRequest(trace_id="no-such-trace"))

    def test_untraced_dispatch_records_nothing(self):
        before = trace_store().stats()["recent_traces"]
        dispatch(BudgetQuery(budget_w=2600.0))
        assert trace_store().stats()["recent_traces"] == before


class TestTimeSeriesDispatch:
    def test_rollup_round_trips(self):
        dispatch(BudgetQuery(budget_w=3000.0))
        resp = dispatch(
            TimeSeriesRequest(window_s=600.0, prefix="repro_dispatch")
        )
        assert _wire(resp)["v"] == API_VERSION
        assert resp.samples >= 1
        names = {s.name for s in resp.series}
        assert "repro_dispatch_total" in names
        decoded = response_from_dict(_wire(resp))
        assert decoded == resp
        assert isinstance(_wire(resp)["series"][0], dict)

    def test_never_cached(self):
        """Identical requests re-sample: the ring grows between calls."""
        first = dispatch(TimeSeriesRequest(window_s=3600.0))
        second = dispatch(TimeSeriesRequest(window_s=3600.0))
        assert second.samples > first.samples

    def test_bad_window_rejected(self):
        with pytest.raises(ParameterError, match="window_s"):
            dispatch(TimeSeriesRequest(window_s=-5.0))


class TestAlertsDispatch:
    def test_states_round_trip(self):
        resp = dispatch(AlertsRequest())
        assert _wire(resp)["v"] == API_VERSION
        assert {a.rule for a in resp.alerts} >= {
            "http-latency-p99", "http-error-rate",
            "http-availability-burn", "sim-slo-violations",
        }
        assert resp.firing == sum(
            1 for a in resp.alerts if a.state == "firing"
        )
        assert resp.pending == sum(
            1 for a in resp.alerts if a.state == "pending"
        )
        decoded = response_from_dict(_wire(resp))
        assert decoded == resp
        assert isinstance(_wire(resp)["alerts"][0], dict)


class TestBuildInfo:
    def test_build_info_carries_version_and_wire_labels(self):
        import repro

        resp = dispatch(MetricsRequest(filter="repro_build_info"))
        expected = (
            f'repro_build_info{{version="{repro.__version__}",'
            f'api="v{API_VERSION}"}} 1'
        )
        assert expected in resp.text

    def test_filter_narrows_the_exposition(self):
        full = dispatch(MetricsRequest()).text
        narrowed = dispatch(MetricsRequest(filter="repro_build_info")).text
        assert len(narrowed) < len(full)
        assert "repro_dispatch_total" in full
        assert "repro_dispatch_total" not in narrowed

    def test_occupancy_gauges_exported(self):
        with trace_context("occupancy-probe"):
            dispatch(BudgetQuery(budget_w=2700.0))
        text = dispatch(MetricsRequest(filter="repro_trace_store")).text
        assert 'repro_trace_store_traces{ring="recent"}' in text
        assert 'repro_trace_store_spans{ring="slow"}' in text
        text = dispatch(MetricsRequest(filter="repro_timeseries")).text
        assert "repro_timeseries_samples" in text
        assert "repro_timeseries_capacity" in text

"""The dispatch facade: routing, engine equivalence, and memoisation."""

import pytest

from repro.api.service import cache_info, clear_caches, dispatch
from repro.api.types import (
    BudgetQuery,
    DeadlineQuery,
    EvaluateRequest,
    IsoEEQuery,
    ParetoQuery,
    ScheduleRequest,
    SurfaceRequest,
    SweepRequest,
    ValidateRequest,
)
from repro.errors import (
    ConfigurationError,
    ParameterError,
    ReproError,
    WireError,
)
from repro.optimize.schedule import Job
from repro.paperdata import paper_model


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestRouting:
    def test_evaluate_matches_direct_engine_call(self):
        resp = dispatch(EvaluateRequest(benchmark="FT", klass="B", p=16))
        model, n = paper_model("FT", "B")
        want = model.evaluate(n=n, p=16)
        assert resp.model == "FT.B on SystemG"
        assert resp.point.ee == pytest.approx(want.ee, rel=1e-12)
        assert resp.point.tp == pytest.approx(want.tp, rel=1e-12)
        assert resp.point.bottleneck == want.bottleneck

    def test_sweep_row_per_p(self):
        resp = dispatch(SweepRequest(p_values=(1, 4, 16)))
        assert [pt.p for pt in resp.points] == [1, 4, 16]
        assert resp.points[0].ee == pytest.approx(1.0)

    def test_surface_axis_f_shape(self):
        resp = dispatch(SurfaceRequest(axis="f", p_values=(1, 16),
                                       f_values_ghz=(2.0, 2.8)))
        assert resp.x == (1, 16)
        assert resp.y == (2.0e9, 2.8e9)
        assert len(resp.values) == 2 and len(resp.values[0]) == 2

    def test_surface_axis_n_uses_factors(self):
        resp = dispatch(SurfaceRequest(axis="n", benchmark="CG",
                                       p_values=(1, 16),
                                       n_factors=(0.5, 1.0, 2.0)))
        assert len(resp.values[0]) == 3
        assert resp.y[1] == pytest.approx(2 * resp.y[0])

    def test_validate_runs_the_harness(self):
        resp = dispatch(ValidateRequest(benchmark="EP", cluster="dori",
                                        klass="S", p=4))
        assert resp.benchmark == "EP" and resp.cluster == "Dori"
        assert resp.measured_j > 0 and resp.predicted_j > 0
        assert resp.abs_error_pct >= 0

    def test_budget_and_deadline_recommend(self):
        b = dispatch(BudgetQuery(budget_w=3000.0))
        assert b.recommendation.avg_power <= 3000.0
        assert b.recommendation.objective == "max_speedup_under_power"
        d = dispatch(DeadlineQuery(deadline_s=b.recommendation.tp * 2))
        assert d.recommendation.tp <= b.recommendation.tp * 2

    def test_isoee_curve_holds_target(self):
        resp = dispatch(IsoEEQuery(target_ee=0.8, p_values=(1, 4, 16)))
        assert resp.target_ee == 0.8
        for point in resp.points:
            if point.converged and point.p > 1:
                assert point.ee == pytest.approx(0.8, abs=1e-4)

    def test_pareto_frontier_sorted(self):
        resp = dispatch(ParetoQuery(p_values=(1, 4, 16)))
        tps = [r.tp for r in resp.points]
        eps = [r.ep for r in resp.points]
        assert tps == sorted(tps)
        assert eps == sorted(eps, reverse=True)

    def test_schedule_fits_budget(self):
        resp = dispatch(ScheduleRequest(
            power_budget_w=8000.0, nodes=32,
            jobs=(Job("a", "FT", "B"), Job("b", "EP", "B")),
        ))
        assert resp.total_power_w <= 8000.0
        assert len(resp.assignments) == 2
        assert resp.headroom_w == pytest.approx(
            8000.0 - resp.total_power_w
        )


class TestErrors:
    def test_engine_errors_surface_as_repro_errors(self):
        with pytest.raises(ParameterError, match="budget"):
            dispatch(BudgetQuery(budget_w=-1.0))

    def test_unknown_cluster_is_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown cluster"):
            dispatch(EvaluateRequest(cluster="summit"))

    def test_non_request_is_wire_error(self):
        with pytest.raises(WireError, match="request type"):
            dispatch({"op": "evaluate"})

    def test_empty_axes_are_clean_errors(self):
        with pytest.raises(ReproError):
            dispatch(SweepRequest(p_values=()))
        with pytest.raises(ReproError):
            dispatch(BudgetQuery(budget_w=100.0, p_values=()))


class TestCachingAndSizing:
    def test_repeat_queries_hit_the_response_cache(self):
        first = dispatch(BudgetQuery(budget_w=3000.0))
        again = dispatch(BudgetQuery(budget_w=3000.0))
        assert again is first
        stats = cache_info()["responses"]
        assert stats.hits >= 1

    def test_distinct_requests_miss(self):
        a = dispatch(BudgetQuery(budget_w=3000.0))
        b = dispatch(BudgetQuery(budget_w=4000.0))
        assert a is not b

    def test_preset_sized_from_max_requested_p(self):
        """The p=1-preset sizing bug: sweeping to p=1024 must resolve."""
        resp = dispatch(SweepRequest(p_values=(1, 1024)))
        assert resp.points[-1].p == 1024
        # dori clamps to its 8 physical nodes rather than failing
        resp = dispatch(SweepRequest(cluster="dori", p_values=(1, 1024)))
        assert resp.model.endswith("on Dori")

    def test_klass_and_benchmark_are_case_insensitive(self):
        a = dispatch(EvaluateRequest(benchmark="ft", klass="b", p=4))
        b = dispatch(EvaluateRequest(benchmark="FT", klass="B", p=4))
        assert a.model == b.model == "FT.B on SystemG"
        assert a.point == b.point

"""Live-server smoke for POST /v1/simulate: parity and reproducibility."""

import json

import pytest

from test_server import _get, _post, _spawn_server, _stop_server

from repro.api.service import clear_caches, dispatch
from repro.api.types import SimulateRequest

PAYLOAD = {
    "op": "simulate",
    "scenario": {
        "shards": [
            {"name": "alpha", "cluster": "systemg", "nodes": 16,
             "power_envelope_w": 4000.0},
            {"name": "beta", "cluster": "dori", "nodes": 8,
             "power_envelope_w": 2000.0, "policy": "energy"},
        ],
        "budget_w": 5500.0,
        "demand": {"kind": "poisson", "rate_per_s": 0.05,
                   "jobs": [{"name": "ft", "benchmark": "FT", "klass": "B"}]},
        "horizon_s": 400.0,
        "seed": 42,
    },
    "include_events": True,
}


@pytest.fixture(scope="module")
def live_server():
    loop, thread, base = _spawn_server()
    yield base
    _stop_server(loop, thread)


class TestSimulateHttp:
    def test_post_simulate_round_trip(self, live_server):
        status, payload = _post(live_server, "/v1/simulate", PAYLOAD)
        assert status == 200
        assert payload["op"] == "simulate"
        report = payload["report"]
        assert report["arrivals"] > 0
        assert report["arrivals"] == report["started"] + report["rejected"]
        assert len(payload["events"]) == report["events"]

    def test_two_posts_are_byte_identical(self, live_server):
        one = _post(live_server, "/v1/simulate", PAYLOAD)[1]
        clear_caches()
        two = _post(live_server, "/v1/simulate", PAYLOAD)[1]
        assert json.dumps(one, sort_keys=True) == json.dumps(
            two, sort_keys=True
        )

    def test_http_matches_in_process_dispatch(self, live_server):
        _, payload = _post(live_server, "/v1/simulate", PAYLOAD)
        direct = dispatch(SimulateRequest.from_dict(PAYLOAD)).to_dict()
        assert json.loads(json.dumps(direct)) == payload

    def test_invalid_scenario_is_a_structured_error(self, live_server):
        bad = {"op": "simulate",
               "scenario": {"shards": [], "queue": "lifo"}}
        status, payload = _post(live_server, "/v1/simulate", bad)
        assert status == 400
        assert payload["error"]["type"] == "ParameterError"
        assert "queue discipline" in payload["error"]["message"]

    def test_healthz_reports_sim_gauges(self, live_server):
        _post(live_server, "/v1/simulate", PAYLOAD)
        status, payload = _get(live_server, "/healthz")
        assert status == 200
        assert payload["sim"]["active_runs"] == 0
        assert payload["sim"]["last_run_events"] > 0

    def test_metrics_exposes_sim_families(self, live_server):
        _post(live_server, "/v1/simulate", PAYLOAD)
        import urllib.request

        with urllib.request.urlopen(f"{live_server}/metrics",
                                    timeout=60) as response:
            text = response.read().decode()
        assert "repro_sim_events_total" in text
        assert "repro_sim_last_run_events" in text
        assert "repro_sim_placements_total" in text

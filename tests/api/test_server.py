"""End-to-end HTTP tests: a live server driven over real sockets."""

import asyncio
import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api.schemas import API_VERSION
from repro.api.server import start_server
from repro.api.service import dispatch
from repro.api.types import BudgetQuery
from repro.errors import ReproError


def _spawn_server(**kwargs):
    loop = asyncio.new_event_loop()
    server = loop.run_until_complete(
        start_server("127.0.0.1", 0, **kwargs)
    )
    port = server.sockets[0].getsockname()[1]
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    return loop, thread, f"http://127.0.0.1:{port}"


def _stop_server(loop, thread):
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=5)


@pytest.fixture(scope="module")
def live_server():
    """A real server on an ephemeral port, torn down with the module."""
    loop, thread, base = _spawn_server()
    yield base
    _stop_server(loop, thread)


@pytest.fixture()
def tiny_server():
    """A server admitting one connection at a time (saturation tests)."""
    loop, thread, base = _spawn_server(max_concurrency=1)
    yield base
    _stop_server(loop, thread)


def _post(base: str, path: str, body) -> tuple[int, dict]:
    data = body if isinstance(body, bytes) else json.dumps(body).encode()
    request = urllib.request.Request(
        f"{base}{path}", data=data,
        headers={"Content-Type": "application/json"}, method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _get(base: str, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(f"{base}{path}", timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


class TestHealth:
    def test_healthz(self, live_server):
        status, payload = _get(live_server, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["api_version"] == API_VERSION
        assert "budget" in payload["operations"]
        assert "batch" in payload["operations"]

    def test_healthz_surfaces_cache_census(self, live_server):
        """Operators watch grid-store amortization from the probe."""
        _post(live_server, "/v1/budget", {"budget_w": 3000.0})
        status, payload = _get(live_server, "/healthz")
        assert status == 200
        caches = payload["caches"]
        assert set(caches) == {
            "responses", "models", "spaces", "grid_store",
            "trace_store", "timeseries",
        }
        store = caches["grid_store"]
        for key in ("hits", "superset_hits", "misses", "entries", "bytes"):
            assert isinstance(store[key], int)
        assert store["misses"] >= 1  # the budget grid above was evaluated
        assert caches["trace_store"]["recent_traces"] >= 1  # the POST above
        assert caches["timeseries"]["capacity"] >= 1


class TestDispatchOverHttp:
    def test_budget_query_round_trip(self, live_server):
        """The e2e path: POST a budget query, get a recommendation."""
        status, payload = _post(
            live_server, "/v1/budget",
            {"benchmark": "FT", "budget_w": 3000.0},
        )
        assert status == 200
        assert payload["op"] == "budget" and payload["v"] == API_VERSION
        rec = payload["recommendation"]
        assert rec["avg_power"] <= 3000.0
        assert rec["p"] >= 1

    def test_http_payload_equals_local_dispatch(self, live_server):
        """The wire answer is exactly the facade's answer."""
        query = BudgetQuery(benchmark="FT", budget_w=3000.0)
        status, payload = _post(live_server, "/v1/budget", query.to_dict())
        assert status == 200
        assert payload == dispatch(query).to_dict()

    def test_full_envelope_body_accepted(self, live_server):
        status, payload = _post(
            live_server, "/v1/evaluate",
            {"op": "evaluate", "v": API_VERSION, "p": 16},
        )
        assert status == 200
        assert payload["point"]["p"] == 16

    def test_empty_body_uses_defaults(self, live_server):
        status, payload = _post(live_server, "/v1/sweep", b"")
        assert status == 200
        assert len(payload["points"]) == 8  # the default p sweep


#: mixed wire payloads for the batch parity property — overlapping
#: grids, several op kinds, and two items that must fail
_BATCH_WIRE_ITEMS = [
    {"op": "budget", "benchmark": "FT", "budget_w": 3000.0},
    {"op": "budget", "benchmark": "FT", "budget_w": 2200.0},
    {"op": "budget", "benchmark": "FT", "budget_w": -1.0},
    {"op": "deadline", "benchmark": "FT", "deadline_s": 30.0},
    {"op": "deadline", "benchmark": "FT", "deadline_s": 1e-9},
    {"op": "evaluate", "p": 16},
    {"op": "sweep", "p_values": [1, 4, 16]},
    {"op": "pareto", "benchmark": "CG"},
    {"op": "isoee", "benchmark": "EP", "target_ee": 0.9,
     "p_values": [2, 8, 32]},
]


class TestBatchOverHttp:
    def test_batch_round_trip(self, live_server):
        status, payload = _post(
            live_server, "/v1/batch", {"items": _BATCH_WIRE_ITEMS}
        )
        assert status == 200
        assert payload["op"] == "batch" and payload["v"] == API_VERSION
        assert len(payload["items"]) == len(_BATCH_WIRE_ITEMS)

    def test_items_byte_identical_to_individual_posts(self, live_server):
        """The acceptance property, over the real wire: every batch slot
        equals the corresponding single ``POST /v1/<op>`` — responses
        *and* structured error payloads alike."""
        status, batch = _post(
            live_server, "/v1/batch", {"items": _BATCH_WIRE_ITEMS}
        )
        assert status == 200
        for item, slot in zip(_BATCH_WIRE_ITEMS, batch["items"]):
            single_status, single = _post(
                live_server, f"/v1/{item['op']}", item
            )
            if slot["ok"]:
                assert single_status == 200
                assert slot["response"] == single
                assert slot["error"] is None
            else:
                assert single_status == 400
                assert slot["error"] == single["error"]
                assert slot["response"] is None

    def test_empty_batch_maps_to_400(self, live_server):
        status, payload = _post(live_server, "/v1/batch", {"items": []})
        assert status == 400
        assert payload["error"]["type"] == "ParameterError"

    def test_nested_batch_maps_to_400(self, live_server):
        status, payload = _post(
            live_server, "/v1/batch",
            {"items": [{"op": "batch", "items": []}]},
        )
        assert status == 400
        assert payload["error"]["type"] == "WireError"
        assert "nest" in payload["error"]["message"]


class TestHttpErrors:
    def test_engine_error_maps_to_400_with_structure(self, live_server):
        status, payload = _post(
            live_server, "/v1/budget", {"budget_w": -4.0}
        )
        assert status == 400
        assert payload["error"]["type"] == "ParameterError"
        assert "positive" in payload["error"]["message"]

    def test_unknown_field_maps_to_400_wire_error(self, live_server):
        status, payload = _post(live_server, "/v1/budget", {"watts": 10})
        assert status == 400
        assert payload["error"]["type"] == "WireError"

    def test_bad_version_maps_to_400(self, live_server):
        status, payload = _post(live_server, "/v1/budget", {"v": 42})
        assert status == 400
        assert "version" in payload["error"]["message"]

    def test_unknown_op_is_404(self, live_server):
        status, payload = _post(live_server, "/v1/teleport", {})
        assert status == 404
        assert "unknown operation" in payload["error"]["message"]

    def test_unknown_path_is_404(self, live_server):
        status, _ = _post(live_server, "/api/budget", {})
        assert status == 404

    def test_get_on_operation_is_405(self, live_server):
        status, _ = _get(live_server, "/v1/budget")
        assert status == 405

    def test_malformed_json_is_400(self, live_server):
        status, payload = _post(live_server, "/v1/budget", b"{not json")
        assert status == 400
        assert payload["error"]["type"] == "WireError"

    def test_negative_content_length_is_400(self, live_server):
        """Transport-level garbage is the client's fault, not a 500."""
        host, port = live_server.rsplit("//", 1)[1].split(":")
        raw = (
            b"POST /v1/budget HTTP/1.1\r\n"
            b"Content-Length: -5\r\n\r\n"
        )
        with socket.create_connection((host, int(port)), timeout=10) as sock:
            sock.sendall(raw)
            reply = sock.recv(4096)
        assert reply.startswith(b"HTTP/1.1 400")
        assert b"WireError" in reply

    def test_op_mismatch_between_path_and_body_is_400(self, live_server):
        status, payload = _post(
            live_server, "/v1/budget", {"op": "sweep"}
        )
        assert status == 400
        assert "does not match" in payload["error"]["message"]


def _raw_post(sock: socket.socket, path: str, body: dict, *, close=False) -> None:
    data = json.dumps(body).encode()
    connection = "close" if close else "keep-alive"
    sock.sendall(
        (
            f"POST {path} HTTP/1.1\r\n"
            "Host: test\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: {connection}\r\n\r\n"
        ).encode() + data
    )


def _read_response(sock: socket.socket) -> tuple[int, dict, bytes]:
    """(status, payload, raw head) of exactly one HTTP response."""
    buf = b""
    while b"\r\n\r\n" not in buf:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("server closed mid-headers")
        buf += chunk
    head, body = buf.split(b"\r\n\r\n", 1)
    status = int(head.split()[1])
    length = 0
    for line in head.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":")[1])
    while len(body) < length:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("server closed mid-body")
        body += chunk
    return status, json.loads(body[:length]), head


class TestKeepAlive:
    def test_two_requests_over_one_connection(self, live_server):
        host, port = live_server.rsplit("//", 1)[1].split(":")
        with socket.create_connection((host, int(port)), timeout=30) as sock:
            _raw_post(sock, "/v1/evaluate", {"p": 4})
            status, payload, head = _read_response(sock)
            assert status == 200 and payload["point"]["p"] == 4
            assert b"connection: keep-alive" in head.lower()
            # the same socket serves a second, different request
            _raw_post(sock, "/v1/evaluate", {"p": 8})
            status, payload, _ = _read_response(sock)
            assert status == 200 and payload["point"]["p"] == 8

    def test_engine_error_keeps_the_connection(self, live_server):
        """A clean 400 leaves the byte stream usable for the next query."""
        host, port = live_server.rsplit("//", 1)[1].split(":")
        with socket.create_connection((host, int(port)), timeout=30) as sock:
            _raw_post(sock, "/v1/budget", {"budget_w": -1.0})
            status, payload, head = _read_response(sock)
            assert status == 400
            assert payload["error"]["type"] == "ParameterError"
            assert b"connection: keep-alive" in head.lower()
            _raw_post(sock, "/v1/evaluate", {"p": 2})
            status, payload, _ = _read_response(sock)
            assert status == 200 and payload["point"]["p"] == 2

    def test_connection_close_is_honoured(self, live_server):
        host, port = live_server.rsplit("//", 1)[1].split(":")
        with socket.create_connection((host, int(port)), timeout=30) as sock:
            _raw_post(sock, "/v1/evaluate", {"p": 4}, close=True)
            status, _, head = _read_response(sock)
            assert status == 200
            assert b"connection: close" in head.lower()
            assert sock.recv(1024) == b""  # the server really hung up


class TestSaturation:
    def test_extra_connection_gets_a_structured_503(self, tiny_server):
        host, port = tiny_server.rsplit("//", 1)[1].split(":")
        holder = socket.create_connection((host, int(port)), timeout=30)
        try:
            # park an in-flight request on the only slot: headers sent,
            # body intentionally withheld
            holder.sendall(
                b"POST /v1/evaluate HTTP/1.1\r\nContent-Length: 10\r\n\r\n"
            )
            deadline = time.monotonic() + 10.0
            status, payload = None, None
            while time.monotonic() < deadline:
                with socket.create_connection(
                    (host, int(port)), timeout=30
                ) as probe:
                    _raw_post(probe, "/v1/evaluate", {"p": 2})
                    try:
                        status, payload, _ = _read_response(probe)
                    except ConnectionError:
                        continue  # raced the holder's admission; retry
                if status == 503:
                    break
                time.sleep(0.05)
            assert status == 503
            assert payload["error"]["type"] == "Saturated"
            assert "max concurrency" in payload["error"]["message"]
        finally:
            holder.close()
        # slot released: the server serves again
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            with socket.create_connection((host, int(port)), timeout=30) as sock:
                _raw_post(sock, "/v1/evaluate", {"p": 2}, close=True)
                try:
                    status, payload, _ = _read_response(sock)
                except ConnectionError:
                    continue
            if status == 200:
                break
            time.sleep(0.05)
        assert status == 200

    def test_stalled_request_releases_its_slot(self, monkeypatch):
        """A mid-request stall must not hold a concurrency slot forever."""
        from repro.api import server as server_mod

        monkeypatch.setattr(server_mod, "KEEPALIVE_IDLE_S", 0.5)
        loop, thread, base = _spawn_server(max_concurrency=1)
        try:
            host, port = base.rsplit("//", 1)[1].split(":")
            staller = socket.create_connection((host, int(port)), timeout=30)
            # headers promise a body that never arrives
            staller.sendall(
                b"POST /v1/evaluate HTTP/1.1\r\nContent-Length: 10\r\n\r\n"
            )
            # after the read timeout the server hangs up on the staller…
            staller.settimeout(10)
            assert staller.recv(1024) == b""
            staller.close()
            # …and the reclaimed slot serves new clients again
            deadline = time.monotonic() + 10.0
            status = None
            while time.monotonic() < deadline:
                with socket.create_connection(
                    (host, int(port)), timeout=30
                ) as sock:
                    _raw_post(sock, "/v1/evaluate", {"p": 2}, close=True)
                    try:
                        status, _, _ = _read_response(sock)
                    except ConnectionError:
                        continue
                if status == 200:
                    break
                time.sleep(0.05)
            assert status == 200
        finally:
            _stop_server(loop, thread)

    def test_invalid_max_concurrency_rejected(self):
        loop = asyncio.new_event_loop()
        try:
            with pytest.raises(ReproError, match="max_concurrency"):
                loop.run_until_complete(
                    start_server("127.0.0.1", 0, max_concurrency=0)
                )
        finally:
            loop.close()


class TestPortContention:
    def test_busy_port_raises_a_clean_repro_error(self):
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        loop = asyncio.new_event_loop()
        try:
            with pytest.raises(ReproError, match="cannot listen"):
                loop.run_until_complete(start_server("127.0.0.1", port))
        finally:
            loop.close()
            blocker.close()

"""End-to-end HTTP tests: a live server driven over real sockets."""

import asyncio
import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.api.schemas import API_VERSION
from repro.api.server import start_server
from repro.api.service import dispatch
from repro.api.types import BudgetQuery
from repro.errors import ReproError


@pytest.fixture(scope="module")
def live_server():
    """A real server on an ephemeral port, torn down with the module."""
    loop = asyncio.new_event_loop()
    server = loop.run_until_complete(start_server("127.0.0.1", 0))
    port = server.sockets[0].getsockname()[1]
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{port}"
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=5)


def _post(base: str, path: str, body) -> tuple[int, dict]:
    data = body if isinstance(body, bytes) else json.dumps(body).encode()
    request = urllib.request.Request(
        f"{base}{path}", data=data,
        headers={"Content-Type": "application/json"}, method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _get(base: str, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(f"{base}{path}", timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


class TestHealth:
    def test_healthz(self, live_server):
        status, payload = _get(live_server, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["api_version"] == API_VERSION
        assert "budget" in payload["operations"]


class TestDispatchOverHttp:
    def test_budget_query_round_trip(self, live_server):
        """The e2e path: POST a budget query, get a recommendation."""
        status, payload = _post(
            live_server, "/v1/budget",
            {"benchmark": "FT", "budget_w": 3000.0},
        )
        assert status == 200
        assert payload["op"] == "budget" and payload["v"] == API_VERSION
        rec = payload["recommendation"]
        assert rec["avg_power"] <= 3000.0
        assert rec["p"] >= 1

    def test_http_payload_equals_local_dispatch(self, live_server):
        """The wire answer is exactly the facade's answer."""
        query = BudgetQuery(benchmark="FT", budget_w=3000.0)
        status, payload = _post(live_server, "/v1/budget", query.to_dict())
        assert status == 200
        assert payload == dispatch(query).to_dict()

    def test_full_envelope_body_accepted(self, live_server):
        status, payload = _post(
            live_server, "/v1/evaluate",
            {"op": "evaluate", "v": API_VERSION, "p": 16},
        )
        assert status == 200
        assert payload["point"]["p"] == 16

    def test_empty_body_uses_defaults(self, live_server):
        status, payload = _post(live_server, "/v1/sweep", b"")
        assert status == 200
        assert len(payload["points"]) == 8  # the default p sweep


class TestHttpErrors:
    def test_engine_error_maps_to_400_with_structure(self, live_server):
        status, payload = _post(
            live_server, "/v1/budget", {"budget_w": -4.0}
        )
        assert status == 400
        assert payload["error"]["type"] == "ParameterError"
        assert "positive" in payload["error"]["message"]

    def test_unknown_field_maps_to_400_wire_error(self, live_server):
        status, payload = _post(live_server, "/v1/budget", {"watts": 10})
        assert status == 400
        assert payload["error"]["type"] == "WireError"

    def test_bad_version_maps_to_400(self, live_server):
        status, payload = _post(live_server, "/v1/budget", {"v": 42})
        assert status == 400
        assert "version" in payload["error"]["message"]

    def test_unknown_op_is_404(self, live_server):
        status, payload = _post(live_server, "/v1/teleport", {})
        assert status == 404
        assert "unknown operation" in payload["error"]["message"]

    def test_unknown_path_is_404(self, live_server):
        status, _ = _post(live_server, "/api/budget", {})
        assert status == 404

    def test_get_on_operation_is_405(self, live_server):
        status, _ = _get(live_server, "/v1/budget")
        assert status == 405

    def test_malformed_json_is_400(self, live_server):
        status, payload = _post(live_server, "/v1/budget", b"{not json")
        assert status == 400
        assert payload["error"]["type"] == "WireError"

    def test_negative_content_length_is_400(self, live_server):
        """Transport-level garbage is the client's fault, not a 500."""
        host, port = live_server.rsplit("//", 1)[1].split(":")
        raw = (
            b"POST /v1/budget HTTP/1.1\r\n"
            b"Content-Length: -5\r\n\r\n"
        )
        with socket.create_connection((host, int(port)), timeout=10) as sock:
            sock.sendall(raw)
            reply = sock.recv(4096)
        assert reply.startswith(b"HTTP/1.1 400")
        assert b"WireError" in reply

    def test_op_mismatch_between_path_and_body_is_400(self, live_server):
        status, payload = _post(
            live_server, "/v1/budget", {"op": "sweep"}
        )
        assert status == 400
        assert "does not match" in payload["error"]["message"]


class TestPortContention:
    def test_busy_port_raises_a_clean_repro_error(self):
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        loop = asyncio.new_event_loop()
        try:
            with pytest.raises(ReproError, match="cannot listen"):
                loop.run_until_complete(start_server("127.0.0.1", port))
        finally:
            loop.close()
            blocker.close()

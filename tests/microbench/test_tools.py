"""Measurement tools: lat_mem_rd, mpptest, perfmon, procstat."""

import pytest

from repro.errors import MeasurementError
from repro.microbench.lmbench import (
    cache_capacities_from_sweep,
    default_sizes,
    estimate_tm,
    lat_mem_rd,
)
from repro.microbench.mpptest import estimate_ts_tw, mpptest
from repro.microbench.perfmon import measure_counters, measure_cpi
from repro.microbench.procstat import proc_stat, total_io_seconds
from repro.simmpi.engine import SimConfig, SimEngine
from repro.simmpi.noise import NoiseModel
from repro.units import KIB, MIB


class TestLmbench:
    def test_staircase_shape(self, systemg8):
        node = systemg8.nodes[0]
        sizes, lat = lat_mem_rd(node, noise_sigma=0.0)
        assert (lat[1:] >= lat[:-1] - 1e-15).all()  # non-decreasing
        assert lat[0] == pytest.approx(node.memory.levels[0].latency)
        assert lat[-1] == pytest.approx(node.memory.dram_latency)

    def test_estimate_tm_exact(self, systemg8):
        node = systemg8.nodes[0]
        assert estimate_tm(node, noise_sigma=0.0) == pytest.approx(
            node.memory.dram_latency
        )

    def test_estimate_tm_with_noise_close(self, systemg8):
        node = systemg8.nodes[0]
        tm = estimate_tm(node, noise_sigma=0.02, seed=5)
        assert tm == pytest.approx(node.memory.dram_latency, rel=0.05)

    def test_cache_capacity_detection(self, systemg8):
        node = systemg8.nodes[0]
        sizes, lat = lat_mem_rd(node, noise_sigma=0.0)
        caps = cache_capacities_from_sweep(sizes, lat)
        # detected boundaries within a factor of 1.5 of the real ones
        assert len(caps) == 2
        assert caps[0] / (32 * KIB) <= 1.5
        assert caps[1] / (6 * MIB) <= 1.5

    def test_default_sizes_bounded(self):
        sizes = default_sizes(1 * MIB)
        assert max(sizes) <= 1 * MIB
        assert min(sizes) >= 1024

    def test_invalid_sizes_rejected(self, systemg8):
        with pytest.raises(MeasurementError):
            lat_mem_rd(systemg8.nodes[0], sizes=[])
        with pytest.raises(MeasurementError):
            lat_mem_rd(systemg8.nodes[0], sizes=[0])


class TestMpptest:
    def test_recovers_fabric_constants(self, systemg8):
        res = mpptest(systemg8)
        net = systemg8.interconnect
        assert res.ts == pytest.approx(net.ts, rel=0.02)
        assert res.tw == pytest.approx(net.tw, rel=0.02)
        assert res.fit.r_squared > 0.999

    def test_noisy_sweep_still_close(self, systemg8):
        res = mpptest(systemg8, noise=NoiseModel(seed=11, net_sigma=0.05), reps=10)
        net = systemg8.interconnect
        assert res.ts == pytest.approx(net.ts, rel=0.25)
        assert res.tw == pytest.approx(net.tw, rel=0.10)

    def test_estimate_shortcut(self, dori4):
        ts, tw = estimate_ts_tw(dori4)
        assert ts == pytest.approx(dori4.interconnect.ts, rel=0.02)
        assert tw == pytest.approx(dori4.interconnect.tw, rel=0.02)

    def test_needs_two_nodes(self):
        from repro.cluster import system_g

        with pytest.raises(MeasurementError):
            mpptest(system_g(1))


class TestPerfmon:
    def test_measure_cpi_exact(self, systemg8):
        cpi, tc = measure_cpi(systemg8)
        assert cpi == pytest.approx(systemg8.head.cpu.base_cpi)
        assert tc == pytest.approx(systemg8.head.cpu.tc())

    def test_measure_cpi_with_factor(self, systemg8):
        cpi, _ = measure_cpi(systemg8, cpi_factor=2.8)
        assert cpi == pytest.approx(2.8 * systemg8.head.cpu.base_cpi)

    def test_counters_exact(self, systemg8):
        def prog(ctx):
            yield from ctx.phase("a")
            yield from ctx.compute(instructions=1e6, mem_accesses=1e3)
            yield from ctx.phase("b")
            yield from ctx.compute(instructions=2e6, mem_accesses=0.0)

        res = SimEngine(systemg8, SimConfig()).run(prog, size=2)
        rep = measure_counters(res)
        assert rep.instructions == pytest.approx(2 * 3e6)
        assert rep.mem_accesses == pytest.approx(2 * 1e3)
        assert rep.per_rank_instructions[0] == pytest.approx(3e6)
        assert rep.per_phase_instructions["a"] == pytest.approx(2e6)
        assert rep.measured_cpi_time == pytest.approx(systemg8.head.cpu.tc())


class TestProcStat:
    def test_bucket_accounting(self, systemg8):
        def prog(ctx):
            yield from ctx.compute(instructions=1e8)
            yield from ctx.io(0.5)
            yield from ctx.sleep(0.25)

        res = SimEngine(systemg8, SimConfig()).run(prog, size=1)
        st = proc_stat(res, node=0)
        assert st.iowait == pytest.approx(0.5)
        assert st.user > 0
        assert st.wall == pytest.approx(res.total_time)
        assert 0 < st.utilization < 1

    def test_total_io_seconds(self, systemg8):
        def prog(ctx):
            yield from ctx.io(0.1)

        res = SimEngine(systemg8, SimConfig()).run(prog, size=3)
        assert total_io_seconds(res) == pytest.approx(0.3)

    def test_unused_node_rejected(self, systemg8):
        def prog(ctx):
            yield from ctx.compute(1.0)

        res = SimEngine(systemg8, SimConfig()).run(prog, size=1)
        with pytest.raises(MeasurementError):
            proc_stat(res, node=5)

"""Regression helpers: line fits, power laws, plateau detection."""

import numpy as np
import pytest

from repro.errors import CalibrationError
from repro.microbench.fitting import (
    fit_line,
    fit_power_law,
    largest_plateau,
    tail_plateau,
)


class TestFitLine:
    def test_exact_recovery(self):
        x = np.array([0.0, 1.0, 2.0, 3.0])
        fit = fit_line(x, 2.0 + 3.0 * x)
        assert fit.intercept == pytest.approx(2.0)
        assert fit.slope == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_recovery(self):
        rng = np.random.default_rng(0)
        x = np.linspace(0, 100, 200)
        y = 5.0 + 0.25 * x + rng.normal(0, 0.5, 200)
        fit = fit_line(x, y)
        assert fit.intercept == pytest.approx(5.0, abs=0.3)
        assert fit.slope == pytest.approx(0.25, abs=0.01)
        assert fit.r_squared > 0.99

    def test_predict(self):
        fit = fit_line([0, 1], [1.0, 3.0])
        assert fit.predict(2.0) == pytest.approx(5.0)

    def test_degenerate_inputs(self):
        with pytest.raises(CalibrationError):
            fit_line([1.0], [2.0])
        with pytest.raises(CalibrationError):
            fit_line([1.0, 1.0], [2.0, 3.0])
        with pytest.raises(CalibrationError):
            fit_line([1.0, 2.0], [2.0])


class TestFitPowerLaw:
    def test_recovers_gamma(self):
        f = np.array([1.6e9, 2.0e9, 2.4e9, 2.8e9])
        delta_p = 140.0 * (f / 2.8e9) ** 2
        a, b = fit_power_law(f, delta_p)
        assert b == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(CalibrationError):
            fit_power_law([1.0, -2.0], [1.0, 2.0])


class TestPlateaus:
    def test_largest_plateau_on_staircase(self):
        stairs = [1.0] * 3 + [5.0] * 8 + [90.0] * 5
        plateau = largest_plateau(stairs)
        assert plateau.level == pytest.approx(5.0)
        assert plateau.width == 8

    def test_tail_plateau_is_last_level(self):
        stairs = [1.0] * 10 + [90.0] * 4
        plateau = tail_plateau(stairs)
        assert plateau.level == pytest.approx(90.0)
        assert plateau.width == 4

    def test_tail_plateau_with_noise(self):
        rng = np.random.default_rng(1)
        stairs = np.concatenate([np.full(10, 5.0), 90.0 * rng.normal(1, 0.02, 6)])
        plateau = tail_plateau(stairs)
        assert plateau.level == pytest.approx(90.0, rel=0.05)
        assert plateau.start == 10

    def test_empty_rejected(self):
        with pytest.raises(CalibrationError):
            largest_plateau([])
        with pytest.raises(CalibrationError):
            tail_plateau([])

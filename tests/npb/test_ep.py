"""EP: workload model, kernel, and the real Marsaglia polar method."""

import math

import numpy as np
import pytest

from repro.microbench.perfmon import measure_counters
from repro.npb.ep import EpBenchmark, EpWorkload, ep_numpy_reference
from repro.simmpi.engine import SimConfig, SimEngine


class TestEpWorkload:
    def test_paper_coefficient(self):
        """§V-B-2 prints Wc = 109.4·n."""
        assert EpWorkload().wc(1e6) == pytest.approx(109.4e6)

    def test_no_communication_in_model(self):
        ap = EpWorkload().params(2**24, 64)
        assert ap.m_messages == 0.0
        assert ap.b_bytes == 0.0
        assert ap.wco == 0.0

    def test_memory_overhead_grows_with_p(self):
        wl = EpWorkload()
        assert wl.wmo(1e6, 128) > wl.wmo(1e6, 2) > wl.wmo(1e6, 1) == 0.0

    def test_eef_independent_of_n(self, machine):
        """§V-B-6: ΔE grows as fast as E1, so n cannot help EP."""
        from repro.core.efficiency import eef

        wl = EpWorkload()
        e_small = eef(machine, wl.params(2**24, 64), 64)
        e_large = eef(machine, wl.params(2**30, 64), 64)
        assert e_small == pytest.approx(e_large, rel=1e-9)


class TestEpKernel:
    def test_kernel_does_tiny_reduction_model_ignores(self, systemg8):
        bench, _ = EpBenchmark.for_class("S")
        n = bench.n_for_class("S")
        res = SimEngine(
            systemg8, SimConfig(alpha=bench.alpha, cpi_factor=bench.cpi_factor)
        ).run(bench.make_program(n, 8), size=8)
        # model says zero messages; kernel's final allreduce is the honest gap
        assert res.trace.m_total > 0
        assert res.trace.b_total <= 96 * res.trace.m_total

    def test_kernel_workload_matches_bias(self, systemg8):
        bench, _ = EpBenchmark.for_class("S")
        n = bench.n_for_class("S")
        ap = bench.app_params(n, 4)
        res = SimEngine(systemg8, SimConfig(alpha=bench.alpha)).run(
            bench.make_program(n, 4), size=4
        )
        rep = measure_counters(res)
        assert rep.instructions == pytest.approx(
            ap.wc * bench.bias.compute_scale, rel=1e-6
        )

    def test_niter_override_rejected(self):
        from repro.errors import ConfigurationError
        from repro.npb.workloads import benchmark_for

        with pytest.raises(ConfigurationError, match="no iteration"):
            benchmark_for("EP", "S", niter=5)


class TestMarsagliaPolar:
    def test_moments_are_gaussian(self):
        g, _ = ep_numpy_reference(n_pairs=50_000)
        assert np.mean(g) == pytest.approx(0.0, abs=0.02)
        assert np.std(g) == pytest.approx(1.0, abs=0.02)
        # excess kurtosis of a Gaussian is 0
        kurt = np.mean(((g - g.mean()) / g.std()) ** 4) - 3.0
        assert abs(kurt) < 0.1

    def test_acceptance_rate_is_pi_over_four(self):
        _, rate = ep_numpy_reference(n_pairs=50_000)
        assert rate == pytest.approx(math.pi / 4.0, abs=0.01)

    def test_deterministic_by_seed(self):
        g1, _ = ep_numpy_reference(n_pairs=1000, seed=5)
        g2, _ = ep_numpy_reference(n_pairs=1000, seed=5)
        assert np.array_equal(g1, g2)

    def test_output_length(self):
        g, _ = ep_numpy_reference(n_pairs=1234)
        assert len(g) == 2468

"""CG: grid topology, comm plan, cache gap, scipy reference."""

import pytest

from repro.errors import ConfigurationError
from repro.npb.cg import (
    CgBenchmark,
    CgWorkload,
    cg_comm_plan,
    cg_grid,
    cg_kernel_memory_rate,
    cg_scipy_reference,
)
from repro.simmpi.engine import SimConfig, SimEngine
from repro.units import MIB


class TestCgGrid:
    @pytest.mark.parametrize(
        "p,expected",
        [(1, (1, 1)), (2, (1, 2)), (4, (2, 2)), (8, (2, 4)), (16, (4, 4)),
         (32, (4, 8)), (64, (8, 8)), (128, (8, 16))],
    )
    def test_npb_grid_shapes(self, p, expected):
        assert cg_grid(p) == expected

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigurationError, match="power-of-two"):
            cg_grid(6)


class TestCgCommPlan:
    def test_sequential_is_silent(self):
        plan = cg_comm_plan(75000, 1)
        assert plan["m"] == 0.0 and plan["b"] == 0.0

    def test_square_grid_has_transpose(self):
        # p=4 → 2×2 grid: 1 row step + 1 transpose + 2 allreduces
        plan = cg_comm_plan(75000, 4)
        from repro.simmpi import collectives

        expected_m = 4 * (1 + 1) + 2 * collectives.allreduce_message_count(4)
        assert plan["m"] == expected_m

    def test_row_only_grid_skips_transpose(self):
        # p=2 → 1×2 grid: no second row to transpose with
        plan = cg_comm_plan(75000, 2)
        from repro.simmpi import collectives

        expected_m = 2 * 1 + 2 * collectives.allreduce_message_count(2)
        assert plan["m"] == expected_m

    def test_segment_shrinks_with_columns(self):
        seg4 = cg_comm_plan(75000, 4)["seg_bytes"]
        seg64 = cg_comm_plan(75000, 64)["seg_bytes"]
        assert seg64 < seg4

    def test_bytes_grow_sublinearly_with_p(self):
        """CG traffic is ∝ n·√p-ish: total B grows, per-rank B shrinks."""
        b16 = cg_comm_plan(75000, 16)["b"]
        b64 = cg_comm_plan(75000, 64)["b"]
        assert b64 > b16
        assert b64 / 64 < b16 / 16


class TestCacheGap:
    def test_rate_drops_when_partition_fits(self):
        n = 75000
        big_l2 = 6 * MIB
        rate_p1 = cg_kernel_memory_rate(n, 1, big_l2)
        rate_p8 = cg_kernel_memory_rate(n, 8, big_l2)
        assert rate_p8 < rate_p1

    def test_small_cache_sees_no_benefit(self):
        n = 75000
        small_l2 = 1 * MIB
        rate_p1 = cg_kernel_memory_rate(n, 1, small_l2)
        rate_p4 = cg_kernel_memory_rate(n, 4, small_l2)
        # Dori-style: partition never becomes resident, rates stay close
        assert rate_p4 == pytest.approx(rate_p1, rel=0.15)

    def test_model_is_blind_to_cache(self):
        wl = CgWorkload(niter=1)
        assert wl.wm(75000) == wl.awm_model * 75000  # constant per row

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            cg_kernel_memory_rate(1000, 1, 0)


class TestCgKernel:
    def test_message_count_matches_plan(self, systemg8):
        bench, _ = CgBenchmark.for_class("S", niter=3)
        n = bench.n_for_class("S")
        p = 8
        plan = cg_comm_plan(n, p)
        res = SimEngine(
            systemg8, SimConfig(alpha=bench.alpha, cpi_factor=bench.cpi_factor)
        ).run(bench.make_program(n, p), size=p)
        assert res.trace.m_total == int(plan["m"]) * 3

    def test_kernel_memory_depends_on_cluster_cache(self, systemg8):
        from repro.microbench.perfmon import measure_counters

        n, p = 75000, 4
        big = CgBenchmark(CgWorkload(niter=2), l2_capacity=6 * MIB)
        small = CgBenchmark(CgWorkload(niter=2), l2_capacity=1 * MIB)
        run = lambda b: SimEngine(systemg8, SimConfig()).run(  # noqa: E731
            b.make_program(n, p), size=p
        )
        mem_big = measure_counters(run(big)).mem_accesses
        mem_small = measure_counters(run(small)).mem_accesses
        assert mem_big < mem_small

    def test_phases_present(self, systemg8):
        bench, _ = CgBenchmark.for_class("S", niter=1)
        res = SimEngine(systemg8, SimConfig()).run(
            bench.make_program(1400, 4), size=4
        )
        phases = {s.phase for s in res.segments}
        assert {"matvec", "row-reduce", "transpose", "dot-products"} <= phases


class TestCgScipyReference:
    def test_converges(self):
        iters, residual, lam = cg_scipy_reference(n=500, nonzer=5)
        assert residual < 1e-5
        assert iters > 0

    def test_matrix_is_positive_definite(self):
        # smallest eigenvalue estimate must be ≥ the identity shift's effect
        _, _, lam = cg_scipy_reference(n=300)
        assert lam > 0

"""FT: workload model forms, kernel consistency, numpy reference."""

import math

import numpy as np
import pytest

from repro.microbench.perfmon import measure_counters
from repro.npb.ft import FtBenchmark, FtWorkload, ft_comm_plan, ft_numpy_reference
from repro.simmpi import collectives
from repro.simmpi.engine import SimConfig, SimEngine


class TestFtWorkload:
    def test_wc_is_nlogn(self):
        wl = FtWorkload(niter=1)
        assert wl.wc(2**20) == pytest.approx(wl.awc * 2**20 * 20)

    def test_sequential_has_no_overheads(self):
        ap = FtWorkload().params(2**20, 1)
        assert ap.wco == 0.0 and ap.wmo == 0.0
        assert ap.m_messages == 0.0 and ap.b_bytes == 0.0

    def test_comm_totals_follow_pairwise_model(self):
        n, p, niter = 2**20, 8, 4
        wl = FtWorkload(niter=niter)
        ap = wl.params(n, p)
        pair = int(16 * n / p**2)
        expected_m = niter * (
            collectives.alltoall_message_count(p)
            + collectives.allreduce_message_count(p)
        )
        assert ap.m_messages == pytest.approx(expected_m)
        assert ap.b_bytes >= niter * collectives.alltoall_byte_count(p, pair)

    def test_transpose_bytes_shrink_per_pair_with_p(self):
        n = 2**22
        plan8 = ft_comm_plan(n, 8)
        plan64 = ft_comm_plan(n, 64)
        assert plan64["pair_bytes"] < plan8["pair_bytes"]
        # but total volume B stays ≈ 16n per iteration
        assert plan64["b"] == pytest.approx(16 * n, rel=0.1)

    def test_iterations_scale_everything(self):
        a1 = FtWorkload(niter=1).params(2**20, 8)
        a5 = FtWorkload(niter=5).params(2**20, 8)
        assert a5.wc == pytest.approx(5 * a1.wc)
        assert a5.m_messages == pytest.approx(5 * a1.m_messages)

    def test_tiny_n_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            FtWorkload().params(2, 1)


class TestFtKernel:
    def test_kernel_issues_modeled_work(self, systemg8):
        bench, _ = FtBenchmark.for_class("S", niter=2)
        n = bench.n_for_class("S")
        p = 4
        ap = bench.app_params(n, p)
        prog = bench.make_program(n, p)
        res = SimEngine(
            systemg8, SimConfig(alpha=bench.alpha, cpi_factor=bench.cpi_factor)
        ).run(prog, size=p)
        rep = measure_counters(res)
        # counters match the analytic totals up to the declared kernel bias
        assert rep.instructions == pytest.approx(
            ap.total_instructions * bench.bias.compute_scale, rel=1e-6
        )
        assert res.trace.m_total == int(ap.m_messages)

    def test_kernel_phases_present(self, systemg8):
        bench, _ = FtBenchmark.for_class("S", niter=1)
        res = SimEngine(systemg8, SimConfig()).run(
            bench.make_program(bench.n_for_class("S"), 4), size=4
        )
        phases = {s.phase for s in res.segments}
        assert {"compute1", "reduction", "compute2", "alltoall"} <= phases

    def test_kernel_runs_sequentially(self, systemg8):
        bench, _ = FtBenchmark.for_class("S", niter=1)
        res = SimEngine(systemg8, SimConfig()).run(
            bench.make_program(bench.n_for_class("S"), 1), size=1
        )
        assert res.trace.m_total == 0

    def test_class_sizes_grow(self):
        bench = FtBenchmark()
        assert (
            bench.n_for_class("S")
            < bench.n_for_class("A")
            < bench.n_for_class("B")
            < bench.n_for_class("C")
        )


class TestFtNumpyReference:
    def test_checksums_finite_and_stable(self):
        c1 = ft_numpy_reference((8, 8, 8), niter=3)
        c2 = ft_numpy_reference((8, 8, 8), niter=3)
        assert c1 == c2  # seeded determinism
        assert all(np.isfinite(c.real) and np.isfinite(c.imag) for c in c1)

    def test_evolution_decays_energy(self):
        """The PDE evolution is a diffusion: spectral energy must shrink."""
        checks = ft_numpy_reference((16, 16, 16), niter=5)
        mags = [abs(c) for c in checks]
        assert mags[-1] <= mags[0] * 1.001

"""Problem-class consistency: the model generalizes across NPB classes.

The paper validates at class B; a model worth adopting must not be
tuned to one problem size.  These tests check that validation accuracy
and the Section-V shape claims hold at other classes too.
"""

import pytest

from repro.cluster import system_g
from repro.core.model import IsoEnergyModel
from repro.npb.base import ProblemClass
from repro.npb.workloads import benchmark_for
from repro.validation.calibration import derive_machine_params
from repro.validation.harness import validate


@pytest.fixture(scope="module")
def g8():
    return system_g(8)


@pytest.mark.parametrize("klass", ["S", "W", "A"])
@pytest.mark.parametrize("name,niter", [("FT", 2), ("CG", 25), ("EP", None)])
def test_validation_error_stable_across_classes(g8, name, klass, niter):
    r = validate(g8, name, klass=klass, p=4, niter=niter, seed=11)
    assert r.abs_error_pct < 15.0, (name, klass, r.abs_error_pct)


@pytest.mark.parametrize("name", ["FT", "CG"])
def test_larger_class_is_more_efficient_at_scale(g8, name):
    """Bigger problems amortize parallel overheads at every class step."""
    ees = []
    for klass in ("A", "B", "C"):
        bench, n = benchmark_for(name, klass, niter=5 if name == "FT" else 125)
        machine = derive_machine_params(g8, cpi_factor=bench.cpi_factor)
        model = IsoEnergyModel(machine, bench.workload)
        ees.append(model.ee(n=n, p=256))
    assert ees == sorted(ees), ees


def test_ep_class_invariance(g8):
    """EP's EE is class-independent (EEF cancels n entirely)."""
    values = []
    for klass in ("S", "A", "C"):
        bench, n = benchmark_for("EP", klass)
        machine = derive_machine_params(g8, cpi_factor=bench.cpi_factor)
        model = IsoEnergyModel(machine, bench.workload)
        values.append(round(model.ee(n=n, p=64), 10))
    assert len(set(values)) == 1


@pytest.mark.parametrize("name", ["FT", "CG", "IS", "MG", "LU", "BT", "SP"])
def test_class_sizes_strictly_increase(name):
    from repro.npb.workloads import benchmark_class

    cls = benchmark_class(name)
    order = [ProblemClass.S, ProblemClass.A, ProblemClass.B, ProblemClass.C]
    sizes = [cls.class_sizes[k] for k in order if k in cls.class_sizes]
    assert all(a <= b for a, b in zip(sizes, sizes[1:])), name

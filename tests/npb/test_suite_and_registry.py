"""Suite benchmarks (IS/MG/LU/BT/SP), registry, base-class helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.microbench.perfmon import measure_counters
from repro.npb.base import KernelBias, NpbBenchmark, ProblemClass
from repro.npb.suite import (
    BtBenchmark,
    IsBenchmark,
    LuBenchmark,
    MgBenchmark,
    SpBenchmark,
)
from repro.npb.workloads import (
    SUITE_BENCHMARKS,
    benchmark_class,
    benchmark_for,
    benchmark_names,
    workload_for,
)
from repro.simmpi.engine import SimConfig, SimEngine

ALL_SUITE = [IsBenchmark, MgBenchmark, LuBenchmark, BtBenchmark, SpBenchmark]


class TestRegistry:
    def test_all_suite_members_registered(self):
        assert set(SUITE_BENCHMARKS) <= set(benchmark_names())

    def test_lookup_case_insensitive(self):
        assert benchmark_class("ft") is benchmark_class("FT")

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown NPB"):
            benchmark_class("XX")

    def test_benchmark_for_returns_class_size(self):
        bench, n = benchmark_for("MG", "A")
        assert n == 256**3
        assert bench.name == "MG"

    def test_workload_for_shortcut(self):
        wl, n = workload_for("LU", "B")
        assert wl.params(n, 4).wc > 0

    def test_niter_override_threads_through(self):
        bench, n = benchmark_for("SP", "B", niter=7)
        assert bench.workload.niter == 7


@pytest.mark.parametrize("cls", ALL_SUITE)
class TestSuiteMembers:
    def test_params_validate_at_scale(self, cls):
        bench, n = cls.for_class("B")
        for p in (1, 2, 4, 8):
            ap = bench.app_params(n, p)
            assert ap.wc > 0
            if p > 1:
                assert ap.m_messages > 0

    def test_kernel_matches_model_traffic(self, cls, systemg8):
        bench, _ = cls.for_class("S", niter=2)
        n = bench.n_for_class("S")
        p = 4
        ap = bench.app_params(n, p)
        res = SimEngine(
            systemg8, SimConfig(alpha=bench.alpha, cpi_factor=bench.cpi_factor)
        ).run(bench.make_program(n, p), size=p)
        assert res.trace.m_total == int(ap.m_messages)
        assert res.trace.b_total == pytest.approx(ap.b_bytes, rel=0.01)

    def test_kernel_workload_close_to_model(self, cls, systemg8):
        bench, _ = cls.for_class("S", niter=1)
        n = bench.n_for_class("S")
        res = SimEngine(systemg8, SimConfig()).run(
            bench.make_program(n, 2), size=2
        )
        rep = measure_counters(res)
        ap = bench.app_params(n, 2)
        assert rep.instructions == pytest.approx(
            ap.total_instructions * bench.bias.compute_scale, rel=0.01
        )


class TestBaseHelpers:
    def test_split_even_conserves_total(self):
        total, p = 1003.0, 4
        shares = [NpbBenchmark.split_even(total, p, r) for r in range(p)]
        assert sum(shares) == pytest.approx(total)

    def test_split_even_imbalance_bounded(self):
        shares = [NpbBenchmark.split_even(1003.0, 4, r) for r in range(4)]
        assert max(shares) - min(shares) <= 1.0

    def test_split_even_single_rank(self):
        assert NpbBenchmark.split_even(17.5, 1, 0) == pytest.approx(17.5)

    def test_kernel_bias_mem_factor(self):
        bias = KernelBias(memory_scale=1.0, memory_scale_parallel=0.1)
        assert bias.mem_factor(1) == pytest.approx(1.0)
        assert bias.mem_factor(10) == pytest.approx(1.09)

    def test_unknown_class_rejected(self):
        bench = IsBenchmark(IsBenchmark.default_workload())
        with pytest.raises(ValueError):
            bench.n_for_class("Z")


def test_problem_class_enum_roundtrip():
    assert ProblemClass("B") is ProblemClass.B
    assert ProblemClass.B.value == "B"

"""Figure 8: CG's EE surface over (p, n) at f = 2.8 GHz.

Paper (§V-B-3, reading Fig. 8): "the energy efficiency decreases as p
increases.  However, increasing the workload size n will improve the
energy efficiency."  The EP companion surface (§V-B-2's point that EP
cannot be rescued by n) is printed alongside for the contrast the paper
draws between the two codes.
"""

from __future__ import annotations

import numpy as np
from conftest import print_artifact

from repro.analysis.report import ascii_heatmap, format_si
from repro.analysis.surface import ee_surface
from repro.paperdata import PAPER_CG_N, PAPER_SYSTEM_G_FREQ, paper_model

P_VALUES = [1, 4, 16, 64, 256, 1024]
N_FACTORS = [0.25, 0.5, 1.0, 2.0, 4.0]


def _surfaces():
    cg_model, _ = paper_model("CG", klass="B")
    cg = ee_surface(
        cg_model,
        p_values=P_VALUES,
        n_values=[f * PAPER_CG_N for f in N_FACTORS],
        f=PAPER_SYSTEM_G_FREQ,
    )
    ep_model, n_ep = paper_model("EP", klass="B")
    ep = ee_surface(
        ep_model,
        p_values=P_VALUES,
        n_values=[f * n_ep for f in N_FACTORS],
        f=PAPER_SYSTEM_G_FREQ,
    )
    return cg, ep


def test_fig8_cg_ee_over_p_and_n(benchmark):
    cg, ep = benchmark(_surfaces)
    body = ascii_heatmap(
        cg.values,
        [int(p) for p in cg.x],
        [format_si(n) for n in cg.y],
        title="EE(p, n) — CG at f=2.8 GHz (rows: p, cols: matrix rows)",
        lo=0.0,
        hi=1.0,
    )
    body += "\nEP companion (flat in n, §V-B-6): EE spread across n per p = " + str(
        [round(float(r.max() - r.min()), 6) for r in ep.values]
    )
    print_artifact("Figure 8 — CG EE(p, n) with EP companion", body)

    # CG: p erodes EE, n restores it
    assert cg.monotone_along_x(increasing=False)
    assert cg.monotone_along_y(increasing=True)
    assert cg.spread_along_y() > 0.1  # n is a real lever for CG
    # EP: n is no lever at all
    assert float(np.max(ep.values.max(axis=1) - ep.values.min(axis=1))) < 1e-9

"""Serving latency and scale-out under concurrent load: p50/p95/p99, RPS.

An asyncio load generator drives a live :class:`~repro.api.pool.WorkerPool`
(real sockets, keep-alive connections, real forked workers) with
warm-cache ``evaluate`` queries — the steady-state serving shape, where
dispatch answers from the memo layer and the cost under test is the
HTTP + executor + instrumentation stack itself.  The pool is measured at
several worker counts; every ``{workers, rps, p50, p95, p99}`` row lands
in ``BENCH_serving.json`` at the repo root so each PR records the
serving envelope next to the code that changed it.

Two floors:

* single-worker throughput ≥ ``RPS_FLOOR`` (a meaningful fraction of the
  measured ~3.4k RPS, so regressions actually fail CI);
* multi-worker scaling ≥ ``SCALE_FLOOR``× single-worker — only asserted
  when the host has ≥2 cores (kernel SO_REUSEPORT load balancing cannot
  scale a single core).

Each connection performs ``WARMUP_PER_CONNECTION`` untimed requests
before the timed window opens, so connection setup and first-request
cache warming never pollute the percentiles (the p99-vs-p95 outlier the
old single-phase bench recorded).
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from pathlib import Path

from conftest import print_artifact

from repro.analysis.report import ascii_table
from repro.api.pool import WorkerPool
from repro.api.service import dispatch
from repro.api.types import EvaluateRequest
from repro.optimize.shm import shm_dir_entries

CONNECTIONS = 8
REQUESTS_PER_CONNECTION = 50
WARMUP_PER_CONNECTION = 5
WORKER_COUNTS = (1, 2)

#: single-worker throughput floor (measured ~3.4k RPS on the dev box;
#: shared CI runners jitter, so the floor sits well below steady state
#: while still catching order-of-magnitude regressions).
RPS_FLOOR = 1000.0

#: multi-worker RPS must reach this multiple of single-worker RPS —
#: enforced only on hosts with at least 2 cores.
SCALE_FLOOR = 1.8

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_serving.json"


def _percentile(sorted_ms: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    rank = max(0, min(len(sorted_ms) - 1, round(q * (len(sorted_ms) - 1))))
    return sorted_ms[rank]


_BODY = json.dumps({"p": 16}).encode()
_HEAD = (
    "POST /v1/evaluate HTTP/1.1\r\n"
    "Host: bench\r\n"
    "Content-Type: application/json\r\n"
    f"Content-Length: {len(_BODY)}\r\n"
    "\r\n"
).encode()


async def _one_request(
    reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    writer.write(_HEAD + _BODY)
    await writer.drain()
    status_line = await reader.readline()
    assert status_line.startswith(b"HTTP/1.1 200"), status_line
    content_length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            content_length = int(value.strip())
    await reader.readexactly(content_length)


async def _open_and_warm(
    port: int,
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """One keep-alive connection, past its untimed warmup phase."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    for _ in range(WARMUP_PER_CONNECTION):
        await _one_request(reader, writer)
    return reader, writer


async def _drive_connection(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    count: int,
    latencies_s: list[float],
) -> None:
    """``count`` timed sequential POSTs on an already-warm connection."""
    try:
        for _ in range(count):
            t0 = time.perf_counter()
            await _one_request(reader, writer)
            latencies_s.append(time.perf_counter() - t0)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:  # pragma: no cover
            pass


async def _run_load(port: int) -> tuple[list[float], float]:
    # phase 1 (untimed): connection setup + per-connection cache warmup
    connections = await asyncio.gather(
        *(_open_and_warm(port) for _ in range(CONNECTIONS))
    )
    # phase 2 (timed): every connection is warm before the clock starts
    latencies_s: list[float] = []
    t0 = time.perf_counter()
    await asyncio.gather(*(
        _drive_connection(r, w, REQUESTS_PER_CONNECTION, latencies_s)
        for r, w in connections
    ))
    return latencies_s, time.perf_counter() - t0


def _run_load_in_thread(port: int) -> tuple[list[float], float]:
    """Run the generator loop in a worker thread, not the pytest main one.

    Hosting ``asyncio.run`` in the main thread trips a CPython 3.11
    recursion-accounting bug that later crashes unrelated ``compile()``
    calls in that thread ("AST constructor recursion depth mismatch"),
    so the generator gets a thread of its own.
    """
    result: list = []
    errors: list[BaseException] = []

    def run() -> None:
        try:
            result.append(asyncio.run(_run_load(port)))
        except BaseException as exc:  # surfaced to the test below
            errors.append(exc)

    thread = threading.Thread(target=run)
    thread.start()
    thread.join(timeout=180)
    if errors:
        raise errors[0]
    assert result, "load generator did not finish"
    return result[0]


def _measure_pool(workers: int) -> dict:
    """One BENCH row: the pool's latency/throughput at one worker count."""
    pool = WorkerPool(
        "127.0.0.1", 0, workers, sample_every_s=None, quiet=True
    )
    pool.start()
    try:
        latencies_s, wall_s = _run_load_in_thread(pool.port)
    finally:
        pool.stop()
    total = CONNECTIONS * REQUESTS_PER_CONNECTION
    assert len(latencies_s) == total
    sorted_ms = sorted(v * 1e3 for v in latencies_s)
    return {
        "workers": workers,
        "requests": total,
        "p50_ms": round(_percentile(sorted_ms, 0.50), 3),
        "p95_ms": round(_percentile(sorted_ms, 0.95), 3),
        "p99_ms": round(_percentile(sorted_ms, 0.99), 3),
        "rps": round(total / wall_s, 1),
        "wall_s": round(wall_s, 3),
    }


def test_serving_latency_under_load(benchmark):
    # warm the dispatch memo *before* the forks: every worker inherits
    # the warm response cache, so the bench times the serving stack
    dispatch(EvaluateRequest(p=16))

    rows = [_measure_pool(workers) for workers in WORKER_COUNTS]

    # no leaked shm segments from this process's pools
    leaked = [
        name for name in shm_dir_entries()
        if f"-{os.getpid():x}p" in name
    ]
    assert not leaked, f"pool shutdown leaked shm segments: {leaked}"

    single = rows[0]
    best_multi = max(
        (row for row in rows if row["workers"] > 1),
        key=lambda row: row["rps"],
        default=None,
    )
    speedup = (
        round(best_multi["rps"] / single["rps"], 3) if best_multi else None
    )
    cores = os.cpu_count() or 1

    record = {
        "op": "evaluate (warm cache, pre-forked pool)",
        "connections": CONNECTIONS,
        "warmup_per_connection": WARMUP_PER_CONNECTION,
        "cpu_count": cores,
        "rows": rows,
        "speedup_multi": speedup,
        "rps_floor": RPS_FLOOR,
        "scale_floor": SCALE_FLOOR,
    }
    ARTIFACT.write_text(json.dumps(record, indent=2) + "\n")

    benchmark.pedantic(
        lambda: dispatch(EvaluateRequest(p=16)), rounds=3, iterations=1
    )

    table_rows = [
        (
            f"workers={row['workers']}",
            f"p50 {row['p50_ms']:.2f} / p95 {row['p95_ms']:.2f} / "
            f"p99 {row['p99_ms']:.2f} ms, {row['rps']:.0f} req/s",
        )
        for row in rows
    ]
    table_rows.append((
        "load",
        f"{CONNECTIONS} conns x {REQUESTS_PER_CONNECTION} reqs "
        f"(+{WARMUP_PER_CONNECTION} untimed warmup each)",
    ))
    table_rows.append((
        "scaling",
        f"{speedup if speedup is not None else '-'}x on {cores} core(s) "
        f"(floor {SCALE_FLOOR}x, enforced on >=2 cores)",
    ))
    table_rows.append(("artifact", str(ARTIFACT.name)))
    print_artifact("api.pool — serving latency under load", body=ascii_table(
        ["quantity", "value"], table_rows
    ))

    assert single["rps"] >= RPS_FLOOR, (
        f"single-worker throughput {single['rps']:.0f} req/s under "
        f"{CONNECTIONS} keep-alive connections (floor {RPS_FLOOR:.0f})"
    )
    if cores >= 2 and best_multi is not None:
        assert best_multi["rps"] >= SCALE_FLOOR * single["rps"], (
            f"{best_multi['workers']}-worker throughput "
            f"{best_multi['rps']:.0f} req/s did not reach "
            f"{SCALE_FLOOR}x the single-worker {single['rps']:.0f} req/s "
            f"on a {cores}-core host"
        )

"""Serving latency under concurrent load: p50/p95/p99 and RPS.

An asyncio load generator drives a live server (real sockets, keep-alive
connections) with warm-cache ``evaluate`` queries — the steady-state
serving shape, where dispatch answers from the memo layer and the cost
under test is the HTTP + executor + instrumentation stack itself.  The
percentiles and throughput land in ``BENCH_serving.json`` at the repo
root so every PR records the serving envelope next to the code that
changed it.

The floor is deliberately loose (shared CI boxes jitter); the JSON
artifact is the precise record.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from pathlib import Path

from conftest import print_artifact

from repro.analysis.report import ascii_table
from repro.api.server import start_server
from repro.api.service import dispatch
from repro.api.types import EvaluateRequest

CONNECTIONS = 8
REQUESTS_PER_CONNECTION = 50
RPS_FLOOR = 50.0

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_serving.json"


def _percentile(sorted_ms: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    rank = max(0, min(len(sorted_ms) - 1, round(q * (len(sorted_ms) - 1))))
    return sorted_ms[rank]


async def _drive_connection(
    port: int, count: int, latencies_s: list[float]
) -> None:
    """One keep-alive connection issuing ``count`` sequential POSTs."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = json.dumps({"p": 16}).encode()
    head = (
        "POST /v1/evaluate HTTP/1.1\r\n"
        "Host: bench\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "\r\n"
    ).encode()
    try:
        for _ in range(count):
            t0 = time.perf_counter()
            writer.write(head + body)
            await writer.drain()
            status_line = await reader.readline()
            assert status_line.startswith(b"HTTP/1.1 200"), status_line
            content_length = 0
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    content_length = int(value.strip())
            await reader.readexactly(content_length)
            latencies_s.append(time.perf_counter() - t0)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:  # pragma: no cover
            pass


async def _run_load(port: int) -> tuple[list[float], float]:
    latencies_s: list[float] = []
    t0 = time.perf_counter()
    await asyncio.gather(*(
        _drive_connection(port, REQUESTS_PER_CONNECTION, latencies_s)
        for _ in range(CONNECTIONS)
    ))
    return latencies_s, time.perf_counter() - t0


def _run_load_in_thread(port: int) -> tuple[list[float], float]:
    """Run the generator loop in a worker thread, not the pytest main one.

    Two event loops must run concurrently (server + generator).  Hosting
    the second ``asyncio.run`` in the main thread trips a CPython 3.11
    recursion-accounting bug that later crashes unrelated ``compile()``
    calls in that thread ("AST constructor recursion depth mismatch"), so
    the generator gets a thread of its own.
    """
    result: list = []
    errors: list[BaseException] = []

    def run() -> None:
        try:
            result.append(asyncio.run(_run_load(port)))
        except BaseException as exc:  # surfaced to the test below
            errors.append(exc)

    thread = threading.Thread(target=run)
    thread.start()
    thread.join(timeout=120)
    if errors:
        raise errors[0]
    assert result, "load generator did not finish"
    return result[0]


def test_serving_latency_under_load(benchmark):
    # warm the dispatch memo so the bench times the serving stack
    dispatch(EvaluateRequest(p=16))

    server_loop = asyncio.new_event_loop()
    server = server_loop.run_until_complete(start_server("127.0.0.1", 0))
    port = server.sockets[0].getsockname()[1]
    thread = threading.Thread(target=server_loop.run_forever, daemon=True)
    thread.start()
    try:
        latencies_s, wall_s = _run_load_in_thread(port)
    finally:
        async def shutdown() -> None:
            server.close()
            await server.wait_closed()
            server_loop.stop()

        asyncio.run_coroutine_threadsafe(shutdown(), server_loop)
        thread.join(timeout=5)
        server_loop.close()

    total = CONNECTIONS * REQUESTS_PER_CONNECTION
    assert len(latencies_s) == total
    sorted_ms = sorted(v * 1e3 for v in latencies_s)
    p50 = _percentile(sorted_ms, 0.50)
    p95 = _percentile(sorted_ms, 0.95)
    p99 = _percentile(sorted_ms, 0.99)
    rps = total / wall_s

    record = {
        "connections": CONNECTIONS,
        "requests": total,
        "op": "evaluate (warm cache)",
        "p50_ms": round(p50, 3),
        "p95_ms": round(p95, 3),
        "p99_ms": round(p99, 3),
        "rps": round(rps, 1),
        "wall_s": round(wall_s, 3),
    }
    ARTIFACT.write_text(json.dumps(record, indent=2) + "\n")

    benchmark.pedantic(
        lambda: dispatch(EvaluateRequest(p=16)), rounds=3, iterations=1
    )

    body = ascii_table(
        ["quantity", "value"],
        [
            ("load", f"{CONNECTIONS} conns x {REQUESTS_PER_CONNECTION} reqs"),
            ("p50", f"{p50:.2f} ms"),
            ("p95", f"{p95:.2f} ms"),
            ("p99", f"{p99:.2f} ms"),
            ("throughput", f"{rps:.0f} req/s"),
            ("floor", f"{RPS_FLOOR:.0f} req/s"),
            ("artifact", str(ARTIFACT.name)),
        ],
    )
    print_artifact("api.server — serving latency under load", body)

    assert rps >= RPS_FLOOR, (
        f"serving throughput {rps:.0f} req/s under {CONNECTIONS} keep-alive "
        f"connections (floor {RPS_FLOOR:.0f})"
    )

"""Ablation: the computational-overlap factor α (§VI-F).

The paper argues α "could not be ignored since [overlap] can reduce
execution time dramatically".  This ablation predicts FT and CG energy
with the fitted α versus a naive α=1 model and quantifies how much
accuracy the overlap term buys against simulated measurements.
"""

from __future__ import annotations

import dataclasses

from conftest import print_artifact

from repro.analysis.report import ascii_table
from repro.core.model import IsoEnergyModel
from repro.npb.workloads import benchmark_for
from repro.powerpack.profiler import PowerProfiler
from repro.validation.calibration import derive_machine_params
from repro.validation.harness import run_benchmark


def _one(cluster, name, klass, niter, p=8, seed=3):
    bench, n = benchmark_for(name, klass, niter)
    machine = derive_machine_params(cluster, cpi_factor=bench.cpi_factor)

    result = run_benchmark(cluster, bench, n, p, seed=seed)
    measured = PowerProfiler(cluster).measure_energy(result)

    with_alpha = IsoEnergyModel(machine, bench.workload).predict_energy(n=n, p=p)

    naive_workload = _alpha_one(bench.workload)
    without_alpha = IsoEnergyModel(machine, naive_workload).predict_energy(n=n, p=p)
    return measured, with_alpha, without_alpha


def _alpha_one(workload):
    class AlphaOne:
        def params(self, n, p):
            return dataclasses.replace(workload.params(n, p), alpha=1.0)

    return AlphaOne()


def _run(cluster):
    rows = []
    for name, niter in (("FT", 3), ("CG", 125)):
        measured, with_a, without_a = _one(cluster, name, "A", niter)
        err_with = abs(with_a - measured) / measured * 100
        err_without = abs(without_a - measured) / measured * 100
        rows.append((name, round(err_with, 2), round(err_without, 2)))
    return rows


def test_ablation_overlap_factor(benchmark, systemg8):
    rows = benchmark.pedantic(lambda: _run(systemg8), rounds=1, iterations=1)
    body = ascii_table(
        ["benchmark", "|error|% with fitted α", "|error|% with α=1"], rows
    )
    body += "\n(the α=1 column is the model §VI-F warns against)"
    print_artifact("Ablation — overlap factor α", body)

    for name, err_with, err_without in rows:
        assert err_with < err_without, f"{name}: α did not improve the model"
        # dropping α misestimates energy by roughly (1−α)·idle share ≈ 5–15%
        assert err_without > 4.0

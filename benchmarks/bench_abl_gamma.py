"""Ablation: the power-frequency exponent γ (Eq. 20, §V-B-4).

The paper assumes ΔP ∝ f^γ with γ ≥ 1 and sets γ=2 for SystemG.  This
ablation sweeps γ ∈ {1, 1.5, 2, 3} and shows how the choice changes the
DVFS story: at γ=1 active energy per instruction is frequency-neutral
(lowering f always saves energy via shorter idle exposure — wait, via
lower power at equal work), while larger γ increasingly rewards CG-style
race-to-high-f.  It also re-fits γ from synthetic (f, ΔP) measurements.
"""

from __future__ import annotations

import dataclasses

from conftest import print_artifact

from repro.analysis.report import ascii_table
from repro.core.model import IsoEnergyModel
from repro.microbench.fitting import fit_power_law
from repro.paperdata import PAPER_CG_N, paper_machine, paper_model
from repro.units import GHZ

GAMMAS = (1.0, 1.5, 2.0, 3.0)
F_LO, F_HI = 2.0 * GHZ, 2.8 * GHZ


def _ee_gap_by_gamma():
    """EE(f_hi) − EE(f_lo) for CG at p=64, per γ."""
    model, _ = paper_model("CG", klass="B")
    machine = paper_machine("CG")
    gaps = []
    for gamma in GAMMAS:
        m = dataclasses.replace(machine, gamma=gamma)
        mdl = IsoEnergyModel(m, model._workload)
        gap = mdl.ee(n=PAPER_CG_N, p=64, f=F_HI) - mdl.ee(n=PAPER_CG_N, p=64, f=F_LO)
        gaps.append((gamma, gap))
    return gaps


def test_ablation_gamma_sweep(benchmark):
    gaps = benchmark(_ee_gap_by_gamma)
    rows = [(g, round(gap, 5)) for g, gap in gaps]
    body = ascii_table(["gamma", "EE(2.8GHz) − EE(2.0GHz), CG p=64"], rows)
    body += "\n(γ=2 is the paper's SystemG setting)"
    print_artifact("Ablation — power-frequency exponent γ", body)

    by_gamma = dict(gaps)
    # at γ=2 (the paper's setting) high frequency helps CG
    assert by_gamma[2.0] > 0
    # γ=1 pushes toward low frequency (tc·ΔP constant, idle term favors low f)
    assert by_gamma[1.0] < by_gamma[2.0]
    # the preference strengthens monotonically with γ
    ordered = [by_gamma[g] for g in GAMMAS]
    assert ordered == sorted(ordered)


def test_ablation_gamma_refit_from_measurements(benchmark):
    """PowerPack-style (f, ΔP) points must recover the configured γ."""

    def _fit():
        machine = paper_machine("CG")
        fs = [1.6 * GHZ, 2.0 * GHZ, 2.4 * GHZ, 2.8 * GHZ]
        dps = [machine.at_frequency(f).delta_pc for f in fs]
        return fit_power_law(fs, dps)

    a, gamma_hat = benchmark(_fit)
    print_artifact(
        "Ablation — γ re-fit", f"fitted γ = {gamma_hat:.4f} (configured 2.0)"
    )
    assert abs(gamma_hat - 2.0) < 1e-6

"""Figure 9: CG's EE surface over (p, f) at n = 75000.

Paper: "energy efficiency declines with increase in the level of
parallelism.  In contrast to EP, the energy efficiency increases with
CPU frequency... In this strong scaling case, users can scale the
frequency up using DVFS to achieve better energy efficiency."
"""

from __future__ import annotations

from conftest import print_artifact

from repro.analysis.report import ascii_heatmap
from repro.analysis.surface import ee_surface
from repro.core.scaling import ee_frequency_sensitivity, frequency_for_best_ee
from repro.paperdata import PAPER_CG_N, paper_model
from repro.units import GHZ

P_VALUES = [1, 4, 16, 64, 256, 1024]
F_VALUES = [2.0 * GHZ, 2.4 * GHZ, 2.8 * GHZ]


def _surface():
    model, _ = paper_model("CG", klass="B")
    return ee_surface(model, p_values=P_VALUES, f_values=F_VALUES, n=PAPER_CG_N)


def test_fig9_cg_ee_over_p_and_f(benchmark):
    surface = benchmark(_surface)
    body = ascii_heatmap(
        surface.values,
        [int(p) for p in surface.x],
        [f"{f / GHZ:.1f}" for f in surface.y],
        title=f"EE(p, f) — CG at n={PAPER_CG_N} (rows: p, cols: GHz)",
        lo=0.0,
        hi=1.0,
    )
    model, _ = paper_model("CG", klass="B")
    best_f, best_ee = frequency_for_best_ee(
        model, n=PAPER_CG_N, p=64, frequencies=F_VALUES
    )
    body += f"\nDVFS advice at p=64: run at {best_f / GHZ:.1f} GHz (EE={best_ee:.4f})"
    print_artifact("Figure 9 — CG EE(p, f)", body)

    # EE declines with p at every frequency
    assert surface.monotone_along_x(increasing=False)
    # and rises with f at every parallel p (the paper's §V-B-7 advice)
    assert surface.values[1:].shape[0] > 0
    for i in range(1, len(surface.x)):
        col = list(surface.values[i])
        assert col == sorted(col), f"EE not rising with f at p={surface.x[i]}"
    # the advice lands on the top frequency
    assert best_f == max(F_VALUES)

    # contrast with EP (paper: "in contrast to EP")
    ep_model, n_ep = paper_model("EP", klass="B")
    s_ep = ee_frequency_sensitivity(ep_model, n=n_ep, p=64, frequencies=F_VALUES)
    s_cg = ee_frequency_sensitivity(model, n=PAPER_CG_N, p=64, frequencies=F_VALUES)
    assert s_cg > 5 * s_ep

"""Figure 7: EP's EE surface over (p, f) — nearly ideal everywhere.

Paper: "energy efficiency hardly changes with p and f.  Energy
efficiency is close to 1 for different combinations of p and f because
only minimum communication overhead is imposed."
"""

from __future__ import annotations

from conftest import print_artifact

from repro.analysis.report import ascii_table
from repro.analysis.surface import ee_surface
from repro.paperdata import paper_model
from repro.units import GHZ

P_VALUES = [1, 4, 16, 64, 256, 1024]
F_VALUES = [1.6 * GHZ, 2.0 * GHZ, 2.4 * GHZ, 2.8 * GHZ]


def _surface():
    model, n = paper_model("EP", klass="B")
    return ee_surface(model, p_values=P_VALUES, f_values=F_VALUES, n=n)


def test_fig7_ep_ee_over_p_and_f(benchmark):
    surface = benchmark(_surface)
    rows = [
        (int(p), *[round(float(v), 5) for v in surface.values[i]])
        for i, p in enumerate(surface.x)
    ]
    body = ascii_table(
        ["p"] + [f"{f / GHZ:.1f} GHz" for f in surface.y], rows
    )
    print_artifact("Figure 7 — EP EE(p, f): the iso-energy-efficient ideal", body)

    assert float(surface.values.min()) > 0.98  # "close to 1"
    assert surface.spread_along_y() < 0.005  # flat in f
    assert surface.spread_along_x() < 0.02  # flat in p

"""Ablation: all-to-all algorithm choice under the FT communication load.

The paper adopts the pairwise-exchange/Hockney model for FT's
MPI_Alltoall after finding it "appropriate and accurate" for SystemG.
This ablation runs the same transpose volume through three algorithms
(pairwise, Bruck, spread) on both fabrics and shows where each wins —
the pairwise choice is only optimal for large messages on fast fabrics,
which is exactly FT's regime.
"""

from __future__ import annotations

from conftest import print_artifact

from repro.analysis.report import ascii_table, format_si
from repro.simmpi import collectives
from repro.simmpi.engine import SimConfig, SimEngine

ALGOS = ("pairwise", "bruck", "spread")


def _time_alltoall(cluster, p, nbytes_per_pair, algorithm):
    def prog(ctx):
        yield from collectives.alltoall(
            ctx, nbytes_per_pair=nbytes_per_pair, algorithm=algorithm
        )

    res = SimEngine(cluster, SimConfig()).run(prog, size=p)
    return res.total_time, res.trace.m_total, res.trace.b_total


def _sweep(cluster, p=8):
    rows = []
    for pair_bytes in (64, 4096, 262144):
        for algo in ALGOS:
            t, m, b = _time_alltoall(cluster, p, pair_bytes, algo)
            rows.append((format_si(pair_bytes, "B"), algo, round(t * 1e6, 1), m, format_si(b, "B")))
    return rows


def test_ablation_alltoall_algorithms(benchmark, systemg8):
    rows = benchmark.pedantic(lambda: _sweep(systemg8), rounds=1, iterations=1)
    body = ascii_table(
        ["msg/pair", "algorithm", "time µs", "messages", "wire bytes"], rows
    )
    print_artifact("Ablation — all-to-all algorithm (SystemG, p=8)", body)

    times = {(r[0], r[1]): r[2] for r in rows}
    # FT's regime (large transpose blocks): pairwise wins on wire volume
    assert times[("262k" + "B", "pairwise")] <= times[("262k" + "B", "bruck")]
    # tiny messages: Bruck's log2(p) start-ups beat p−1 start-ups
    assert times[("64B", "bruck")] < times[("64B", "pairwise")]


def test_ablation_congestion_erodes_spread_advantage(benchmark, systemg8):
    """'spread' overlaps all p−1 transfers and wins on an idle fabric, but
    its fan-in makes it the most congestion-sensitive algorithm: as β
    grows, its advantage over round-structured pairwise erodes."""

    def _ratio(beta: float) -> float:
        out = {}
        for algo in ("pairwise", "spread"):
            def prog(ctx, algo=algo):
                yield from collectives.alltoall(
                    ctx, nbytes_per_pair=65536, algorithm=algo
                )

            res = SimEngine(
                systemg8, SimConfig(congestion_beta=beta)
            ).run(prog, size=8)
            out[algo] = res.total_time
        return out["spread"] / out["pairwise"]

    def _run():
        return {beta: _ratio(beta) for beta in (0.0, 0.05, 0.2)}

    ratios = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_artifact(
        "Ablation — congestion sensitivity",
        "spread/pairwise time ratio by β: "
        + ", ".join(f"β={b}: {r:.3f}" for b, r in ratios.items()),
    )
    # overlap wins when the fabric is idle…
    assert ratios[0.0] < 1.0
    # …but congestion hits the all-at-once pattern hardest
    assert ratios[0.2] > ratios[0.05] > ratios[0.0]

"""Perf benchmark: the batched iso-EE bisection vs the per-p scalar path.

The contour tracer used to bisect each p with scalar ``model.ee`` calls;
:func:`repro.optimize.contour.iso_ee_curve` now runs one batched bisection
over every p at once on top of the vectorized pair evaluator.  This bench
traces the acceptance curve (FT, 256 processor counts) both ways, checks
the two solvers agree — converged flags identical and EE at the solved
points equal within 1e-6 (EE, not n, is the contour's defining quantity:
near the asymptote the curve is numerically flat in n, so any solver's n
is only determined up to the EE precision) — and holds the batched path
to a ≥5× wall-clock speedup over the scalar reference.
"""

from __future__ import annotations

import time

from conftest import print_artifact

from repro.analysis.report import ascii_table
from repro.optimize.contour import iso_ee_curve, iso_ee_curve_scalar
from repro.paperdata import paper_model

P_VALUES = list(range(2, 514, 2))  # 256 processor counts
TARGET_EE = 0.8
#: both solvers run well below the comparison tolerance so each is pinned
#: to the true root much tighter than the 1e-6 equivalence bound
REL_TOL = 1e-8
SPEEDUP_FLOOR = 5.0
EE_TOL = 1e-6


def _fresh():
    model, n = paper_model("FT", klass="B")
    return model, n


def test_batched_contour_speedup(benchmark):
    # separate models so neither path warms the other's Θ2 memo layer
    scalar_model, n = _fresh()
    batched_model, _ = _fresh()

    t0 = time.perf_counter()
    ref = iso_ee_curve_scalar(
        scalar_model, target_ee=TARGET_EE, p_values=P_VALUES,
        n_seed=n, rel_tol=REL_TOL,
    )
    t_scalar = time.perf_counter() - t0
    t0 = time.perf_counter()
    curve = iso_ee_curve(
        batched_model, target_ee=TARGET_EE, p_values=P_VALUES,
        n_seed=n, rel_tol=REL_TOL,
    )
    t_batched = time.perf_counter() - t0
    benchmark.pedantic(
        lambda: iso_ee_curve(
            batched_model, target_ee=TARGET_EE, p_values=P_VALUES,
            n_seed=n, rel_tol=REL_TOL,
        ),
        rounds=3,
        iterations=1,
    )
    speedup = t_scalar / t_batched

    assert len(curve) == len(ref) == len(P_VALUES)
    worst_ee = 0.0
    for got, want in zip(curve, ref):
        assert got.p == want.p and got.axis == want.axis
        assert got.converged == want.converged, got.p
        worst_ee = max(worst_ee, abs(got.ee - want.ee))
        assert abs(got.ee - want.ee) <= EE_TOL, (got, want)
        # every converged point holds the target within solver precision
        if got.converged:
            assert abs(got.ee - TARGET_EE) <= 1e-6, got

    body = ascii_table(
        ["quantity", "value"],
        [
            ("curve", f"FT.B n(p) at EE = {TARGET_EE}"),
            ("p values", len(P_VALUES)),
            ("scalar per-p bisection", f"{t_scalar * 1e3:.1f} ms"),
            ("batched bisection", f"{t_batched * 1e3:.1f} ms"),
            ("speedup", f"{speedup:.1f}x"),
            ("floor", f"{SPEEDUP_FLOOR:.0f}x"),
            ("worst |EE delta|", f"{worst_ee:.2e}"),
        ],
    )
    print_artifact("optimize.contour — batched iso-EE bisection", body)

    assert speedup >= SPEEDUP_FLOOR, (
        f"batched contour tracing only {speedup:.1f}x faster than the "
        f"scalar per-p path (need >= {SPEEDUP_FLOOR:.0f}x)"
    )

"""Perf benchmark: the vectorized grid evaluator vs the scalar sweep.

The optimize subsystem's hot path is dense (p × f × n) evaluation —
contours, budgets, and schedulers all sit on top of it.  This bench
evaluates the acceptance grid (50 × 20 × 10 = 10,000 points) both ways,
checks exact numerical equivalence on a sample, and holds the vectorized
path to a ≥10× wall-clock speedup over the scalar triple loop.
"""

from __future__ import annotations

import time

from conftest import print_artifact

from repro.analysis.report import ascii_table
from repro.optimize.grid import evaluate_grid, scalar_grid
from repro.paperdata import paper_model
from repro.units import GHZ

P_VALUES = list(range(1, 51))  # 50
F_VALUES = [(1.6 + 1.2 * i / 19) * GHZ for i in range(20)]  # 20
N_FACTORS = [0.25 * (2.0 ** (i / 3)) for i in range(10)]  # 10
SPEEDUP_FLOOR = 10.0


def _fresh():
    model, n = paper_model("FT", klass="B")
    return model, [n * fac for fac in N_FACTORS]


def _time(fn, repeats: int = 3) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_grid_evaluator_speedup(benchmark):
    # separate models so neither path warms the other's Θ2 memo layer
    scalar_model, n_values = _fresh()
    vector_model, _ = _fresh()

    # both paths timed cold (repeats=1, fresh models) so the gated ratio
    # reflects vectorization, not one side enjoying a warm Θ2 cache
    t_scalar, ref_points = _time(
        lambda: scalar_grid(
            scalar_model, p_values=P_VALUES, f_values=F_VALUES,
            n_values=n_values,
        ),
        repeats=1,
    )
    t_vector, grid = _time(
        lambda: evaluate_grid(
            vector_model, p_values=P_VALUES, f_values=F_VALUES,
            n_values=n_values,
        ),
        repeats=1,
    )
    benchmark.pedantic(
        lambda: evaluate_grid(
            vector_model, p_values=P_VALUES, f_values=F_VALUES,
            n_values=n_values,
        ),
        rounds=3,
        iterations=1,
    )
    speedup = t_scalar / t_vector

    # numerical equivalence on a stratified sample of the 10k points
    shape = grid.shape
    stride = max(len(ref_points) // 97, 1)
    for flat in range(0, len(ref_points), stride):
        kn = flat % shape[2]
        jf = (flat // shape[2]) % shape[1]
        ip = flat // (shape[1] * shape[2])
        a, b = grid.point(ip, jf, kn), ref_points[flat]
        for fld in ("tp", "ep", "ee", "speedup"):
            av, bv = getattr(a, fld), getattr(b, fld)
            assert abs(av - bv) <= 1e-9 * max(abs(bv), 1e-300), (fld, flat)
        assert a.bottleneck == b.bottleneck

    body = ascii_table(
        ["quantity", "value"],
        [
            ("grid", f"{shape[0]} x {shape[1]} x {shape[2]} (p x f x n)"),
            ("points", grid.size),
            ("scalar sweep", f"{t_scalar * 1e3:.1f} ms"),
            ("vectorized", f"{t_vector * 1e3:.1f} ms"),
            ("speedup", f"{speedup:.1f}x"),
            ("floor", f"{SPEEDUP_FLOOR:.0f}x"),
        ],
    )
    print_artifact("optimize.grid — vectorized batch evaluation", body)

    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized grid evaluation only {speedup:.1f}x faster than the "
        f"scalar sweep (need >= {SPEEDUP_FLOOR:.0f}x)"
    )

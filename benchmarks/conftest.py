"""Shared bench configuration.

Every bench regenerates one paper artifact (figure or table), prints the
series it reproduces (paper-vs-measured where the paper gives numbers),
and times the regeneration via pytest-benchmark.  Heavy simulation-backed
benches use ``benchmark.pedantic`` with one round to keep wall time sane.
"""

from __future__ import annotations

import pytest

try:
    # Imported eagerly on purpose: the hypothesis pytest plugin lazily
    # imports this at terminal-summary time, and compiling it then —
    # after the serving bench has run worker threads and event loops —
    # intermittently trips a CPython 3.11 "AST constructor recursion
    # depth mismatch" SystemError.  Importing it here, single-threaded,
    # caches the modules before any bench runs.
    import hypothesis.internal.observability  # noqa: F401
except ImportError:  # pragma: no cover - plugin not installed
    pass

from repro.cluster import dori, system_g


@pytest.fixture(scope="session")
def systemg128():
    return system_g(128)


@pytest.fixture(scope="session")
def systemg32():
    return system_g(32)


@pytest.fixture(scope="session")
def systemg8():
    return system_g(8)


@pytest.fixture(scope="session")
def dori8():
    return dori(8)


def print_artifact(title: str, body: str) -> None:
    """Uniform artifact banner so bench output is easy to scan/tee."""
    bar = "=" * max(len(title) + 8, 40)
    print(f"\n{bar}\n=== {title} ===\n{bar}\n{body}\n")

"""Figure 4: mean prediction error of EP/FT/CG on SystemG, p = 1..128.

Paper values: EP 6.64%, FT 4.99%, CG 8.31% (class B, InfiniBand), with
CG's excess attributed to memory-model inaccuracy.  The reproduction
must land each benchmark within 2.5 percentage points and preserve the
ordering CG > EP > FT.
"""

from __future__ import annotations

from conftest import print_artifact

from repro.analysis.report import ascii_table
from repro.paperdata import PAPER_MEAN_ERROR_PCT, PAPER_P_SWEEP
from repro.validation.study import error_by_parallelism, mean_error_table

#: iteration sampling for the long-running codes (model+kernel consistent)
NITER = {"EP": None, "FT": 5, "CG": 75}


def _run(cluster):
    results = {}
    for name in ("EP", "FT", "CG"):
        results[name] = error_by_parallelism(
            cluster,
            name,
            p_values=PAPER_P_SWEEP,
            klass="B",
            niter=NITER[name],
            seeds=(0,),
        )
    return results


def test_fig4_mean_error_rates(benchmark, systemg128):
    results = benchmark.pedantic(lambda: _run(systemg128), rounds=1, iterations=1)
    table = dict(mean_error_table(results))

    rows = []
    for name in ("EP", "FT", "CG"):
        per_p = [round(r.abs_error_pct, 1) for r in results[name]]
        rows.append(
            (name, round(table[name], 2), PAPER_MEAN_ERROR_PCT[name], str(per_p))
        )
    body = ascii_table(
        ["benchmark", "mean |error| % (ours)", "paper %", "per-p errors"], rows
    )
    print_artifact("Figure 4 — SystemG error rates (p=1..128, class B)", body)

    for name in ("EP", "FT", "CG"):
        assert abs(table[name] - PAPER_MEAN_ERROR_PCT[name]) < 2.5, name
    # the paper's ordering: CG worst (memory model), FT best
    assert table["CG"] > table["EP"] > table["FT"]
    # and the headline claim: overall average error ≈ 5%
    overall = sum(table.values()) / 3
    assert overall < 9.0

"""Figure 2a/2b: performance and energy efficiency vs. CPU count.

Paper: FT "scales reasonably well while CG drops off at 16 CPUs then
recovers relative to the ideal case"; both curves sit in the 0.7–1.0 band
over 1–32 CPUs, with energy efficiency below performance efficiency.

Regenerates the measured curves by simulating class-A runs on SystemG
(class B at full iteration counts would take minutes; the curve shapes
are iteration-invariant) alongside the model's prediction of each point.
"""

from __future__ import annotations

from conftest import print_artifact

from repro.analysis.report import ascii_table
from repro.validation.study import efficiency_study

P_VALUES = (1, 2, 4, 8, 16, 32)


def _curves(cluster, benchmark: str, niter: int):
    return efficiency_study(
        cluster,
        benchmark,
        p_values=P_VALUES,
        klass="A",
        niter=niter,
        seed=2,
    )


def _render(name: str, points) -> str:
    rows = [
        (
            pt.p,
            round(pt.measured_perf_eff, 3),
            round(pt.measured_energy_eff, 3),
            round(pt.model_perf_eff, 3),
            round(pt.model_energy_eff, 3),
        )
        for pt in points
    ]
    return ascii_table(
        ["CPUs", "perf-eff (meas)", "energy-eff (meas)", "perf-eff (model)", "energy-eff (model)"],
        rows,
    )


def test_fig2a_ft_efficiency(benchmark, systemg32):
    points = benchmark.pedantic(
        lambda: _curves(systemg32, "FT", niter=3), rounds=1, iterations=1
    )
    print_artifact("Figure 2a — FT efficiency vs CPUs (SystemG)", _render("FT", points))
    # FT scales reasonably well: stays above 0.55 through 32 CPUs
    assert all(pt.measured_energy_eff > 0.55 for pt in points)
    # energy efficiency declines overall
    assert points[-1].measured_energy_eff < points[0].measured_energy_eff


def test_fig2b_cg_efficiency(benchmark, systemg32):
    points = benchmark.pedantic(
        lambda: _curves(systemg32, "CG", niter=125), rounds=1, iterations=1
    )
    print_artifact("Figure 2b — CG efficiency vs CPUs (SystemG)", _render("CG", points))
    measured = [pt.measured_energy_eff for pt in points]
    assert measured[-1] < measured[0]
    # CG's decline is not smooth: after the initial drop the decline *rate*
    # recovers (the cache-residency boost and stepped processor grid), the
    # "drops off then recovers relative to the ideal case" of Fig. 2b.
    diffs = [b - a for a, b in zip(measured, measured[1:])]
    second = [b - a for a, b in zip(diffs, diffs[1:])]
    assert max(second) > 0.01, measured

"""Table 2: deriving the application-dependent parameter vector Θ2.

The paper obtains (Wc, Wm) from Perfmon counters, (M, B) from PMPI/TAU
tracing, the overheads by subtracting the p=1 reference, α from timing,
and fits the scaling coefficients (e.g. EP's 109.4 instructions/pair).
This bench runs that entire measurement pipeline on instrumented runs
and checks each derived quantity against the generating model.
"""

from __future__ import annotations

from conftest import print_artifact

from repro.analysis.report import ascii_table, format_si
from repro.microbench.perfmon import measure_counters
from repro.npb.workloads import benchmark_for
from repro.simmpi.engine import SimConfig, SimEngine
from repro.validation.calibration import (
    fit_workload_scaling,
    measure_app_params,
    split_overheads,
)


def _measure_theta2(cluster, name, klass, p, niter=None):
    bench, n = benchmark_for(name, klass, niter)
    config = SimConfig(alpha=bench.alpha, cpi_factor=bench.cpi_factor)

    seq_run = SimEngine(cluster, config).run(bench.make_program(n, 1), size=1)
    par_run = SimEngine(cluster, config).run(bench.make_program(n, p), size=p)
    seq = measure_app_params(seq_run, alpha=bench.alpha)
    par = measure_app_params(par_run, alpha=bench.alpha)
    return bench, n, split_overheads(seq, par)


def _fit_ep_coefficient(cluster):
    """Re-derive the paper's 109.4 instructions/pair from counter sweeps."""
    from repro.npb.ep import EpBenchmark

    ns, wcs = [], []
    for n in (2**18, 2**19, 2**20):
        bench = EpBenchmark()
        run = SimEngine(cluster, SimConfig(alpha=bench.alpha)).run(
            bench.make_program(float(n), 1), size=1
        )
        ns.append(float(n))
        wcs.append(measure_counters(run).instructions)
    return fit_workload_scaling(ns, wcs, "linear")


def test_tab2_measured_theta2(benchmark, systemg8):
    bench, n, theta2 = benchmark.pedantic(
        lambda: _measure_theta2(systemg8, "FT", "S", p=8, niter=2),
        rounds=1,
        iterations=1,
    )
    model = bench.app_params(n, 8)
    rows = [
        ("alpha", round(theta2.alpha, 3), round(model.alpha, 3)),
        ("Wc", format_si(theta2.wc), format_si(model.wc)),
        ("Wm", format_si(theta2.wm), format_si(model.wm)),
        ("Wco", format_si(theta2.wco), format_si(model.wco)),
        ("Wmo", format_si(theta2.wmo), format_si(model.wmo)),
        ("M", int(theta2.m_messages), int(model.m_messages)),
        ("B", format_si(theta2.b_bytes), format_si(model.b_bytes)),
    ]
    print_artifact(
        "Table 2 — FT.S application parameters (measured vs analytic)",
        ascii_table(["param", "measured", "analytic"], rows),
    )
    # measured workload = analytic × declared kernel bias
    assert abs(theta2.wc / (model.wc * bench.bias.compute_scale) - 1) < 0.02
    assert theta2.m_messages == model.m_messages
    assert abs(theta2.b_bytes / model.b_bytes - 1) < 0.01


def test_tab2_ep_coefficient_fit(benchmark, systemg8):
    coeff = benchmark.pedantic(
        lambda: _fit_ep_coefficient(systemg8), rounds=1, iterations=1
    )
    from repro.npb.ep import EpBenchmark
    from repro.paperdata import PAPER_EP_WC_PER_PAIR

    expected = PAPER_EP_WC_PER_PAIR * EpBenchmark().bias.compute_scale
    print_artifact(
        "Table 2 — EP Wc coefficient fit",
        f"fitted {coeff:.2f} instructions/pair "
        f"(paper coefficient {PAPER_EP_WC_PER_PAIR}, kernel bias ×{EpBenchmark().bias.compute_scale})",
    )
    assert abs(coeff / expected - 1) < 0.01

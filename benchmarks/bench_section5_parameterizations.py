"""Section V printed parameterizations: the EEF/EE closed forms.

The paper prints, for each case study, the machine vector Θ1, the
application vector Θ2(n, p), and the resulting EEF/EE expressions.  This
bench evaluates our reconstructed parameterizations at representative
points and prints the full set — the tabular equivalent of the paper's
inline equations — then checks the cross-benchmark orderings the section
argues from.
"""

from __future__ import annotations

from conftest import print_artifact

from repro.analysis.report import ascii_table, format_si
from repro.core.efficiency import eef_terms
from repro.paperdata import PAPER_CG_N, paper_machine, paper_model


def _evaluate_all():
    out = {}
    for name in ("EP", "FT", "CG"):
        model, n = paper_model(name, klass="B")
        if name == "CG":
            n = PAPER_CG_N
        machine = paper_machine(name)
        point = model.evaluate(n=n, p=64)
        terms = eef_terms(machine, model.app_params(n, 64), 64)
        out[name] = (machine, point, terms)
    return out


def test_section5_parameterizations(benchmark):
    results = benchmark(_evaluate_all)

    theta1_rows = []
    point_rows = []
    for name, (machine, point, terms) in results.items():
        theta1_rows.append(
            (
                name,
                format_si(machine.tc, "s"),
                format_si(machine.tm, "s"),
                format_si(machine.ts, "s"),
                f"{machine.delta_pc:.0f}W",
                f"{machine.p_system_idle:.0f}W",
            )
        )
        dominant = max(
            (k for k in terms if k != "sequential_energy"), key=terms.__getitem__
        )
        point_rows.append(
            (name, round(point.eef, 4), round(point.ee, 4), dominant)
        )
    body = (
        "Θ1 per application (SystemG, per-app CPI as in §IV-B):\n"
        + ascii_table(["app", "tc", "tm", "ts", "ΔPc", "Psys-idle"], theta1_rows)
        + "\n\nEEF/EE at p=64, class-B workloads:\n"
        + ascii_table(["app", "EEF", "EE", "dominant overhead"], point_rows)
    )
    print_artifact("Section V — reconstructed parameterizations", body)

    eefs = {name: results[name][1].eef for name in results}
    # §V orderings: EP nearly ideal; CG's overhead worst at this point
    assert eefs["EP"] < 0.01
    assert eefs["CG"] > eefs["FT"] > eefs["EP"]
    # FT's dominant loss at scale is communication/memory, never compute
    ft_terms = results["FT"][2]
    assert ft_terms["compute_overhead"] < max(
        ft_terms["memory_overhead"],
        ft_terms["message_startup"] + ft_terms["byte_transmission"],
    )

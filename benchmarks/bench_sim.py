"""Perf floor: the discrete-event core on a synthetic M/M/c queue.

The site simulator's scalability claim is that the engine itself —
heap scheduling plus event-log appends — is never the bottleneck; the
grid math behind ladder construction is, and that is paid once per
scenario, not per event.  So the floor here exercises the raw
:class:`~repro.sim.engine.Simulator` with zero model math: a classic
M/M/c queue (Poisson arrivals, exponential service, ``c`` servers)
where every job logs an ``arrival``, a ``start``, and a ``finish``
event.  The engine must sustain **≥50k events/s** end to end, which
keeps a 100k-event scenario's engine share under ~2 s of wall time.
"""

from __future__ import annotations

import random
import time
from collections import deque

from conftest import print_artifact

from repro.analysis.report import ascii_table
from repro.sim import Simulator

EVENTS_PER_SEC_FLOOR = 50_000.0

JOBS = 40_000          # three events per job → 120k events
SERVERS = 8
ARRIVAL_RATE = 1.0     # jobs per simulated second
SERVICE_RATE = 0.2     # per server → utilization ~0.625


def _build_mmc(jobs: int, servers: int, seed: int = 7) -> Simulator:
    rng = random.Random(seed)
    sim = Simulator()
    waiting: deque[int] = deque()
    busy = [0]
    service = [rng.expovariate(SERVICE_RATE) for _ in range(jobs)]

    def start(k: int) -> None:
        busy[0] += 1
        sim.log.append(sim.now, "start", job=str(k))
        sim.schedule(service[k], finish, k)

    def finish(k: int) -> None:
        busy[0] -= 1
        sim.log.append(sim.now, "finish", job=str(k))
        if waiting:
            start(waiting.popleft())

    def arrival(k: int) -> None:
        sim.log.append(sim.now, "arrival", job=str(k))
        if busy[0] < servers:
            start(k)
        else:
            waiting.append(k)

    t = 0.0
    for k in range(jobs):
        t += rng.expovariate(ARRIVAL_RATE)
        sim.schedule_at(t, arrival, k)
    return sim


def test_engine_event_throughput_floor(benchmark):
    holder = {}

    def run() -> float:
        sim = _build_mmc(JOBS, SERVERS)
        started = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - started
        holder["sim"] = sim
        holder["elapsed"] = elapsed
        return elapsed

    benchmark.pedantic(run, rounds=1, iterations=1)

    sim, elapsed = holder["sim"], holder["elapsed"]
    events = len(sim.log)
    rate = events / elapsed
    counts = sim.log.counts()
    assert counts["arrival"] == counts["start"] == counts["finish"] == JOBS
    assert events == 3 * JOBS

    print_artifact(
        "Engine throughput — synthetic M/M/c",
        ascii_table(
            ["quantity", "value"],
            [
                ("jobs (M/M/%d)" % SERVERS, JOBS),
                ("events dispatched", events),
                ("wall time (s)", f"{elapsed:.3f}"),
                ("events per second", f"{rate:,.0f}"),
                ("floor (events/s)", f"{EVENTS_PER_SEC_FLOOR:,.0f}"),
            ],
        ),
    )
    assert rate >= EVENTS_PER_SEC_FLOOR, (
        f"engine sustained {rate:,.0f} events/s, "
        f"below the {EVENTS_PER_SEC_FLOOR:,.0f} floor"
    )

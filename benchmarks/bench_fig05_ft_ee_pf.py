"""Figure 5: FT's EE surface over (p, f) at fixed workload.

Paper: "the level of parallelism p most affects changes in energy
efficiency versus frequency... frequency f has little impact" — FT is
dominated by all-to-all communication, so DVFS barely moves its EE while
scaling p erodes it dramatically.
"""

from __future__ import annotations

from conftest import print_artifact

from repro.analysis.report import ascii_heatmap
from repro.analysis.surface import ee_surface
from repro.paperdata import paper_model
from repro.units import GHZ

P_VALUES = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
F_VALUES = [1.6 * GHZ, 2.0 * GHZ, 2.4 * GHZ, 2.8 * GHZ]


def _surface():
    model, n = paper_model("FT", klass="B")
    return ee_surface(model, p_values=P_VALUES, f_values=F_VALUES, n=n)


def test_fig5_ft_ee_over_p_and_f(benchmark):
    surface = benchmark(_surface)
    body = ascii_heatmap(
        surface.values,
        [int(p) for p in surface.x],
        [f"{f / GHZ:.1f}" for f in surface.y],
        title="EE(p, f) — FT class B, SystemG (rows: p, cols: GHz)",
        lo=0.0,
        hi=1.0,
    )
    body += "\nrows (p, EE@1.6..2.8GHz):\n" + "\n".join(
        str(r) for r in surface.rows()
    )
    print_artifact("Figure 5 — FT EE(p, f)", body)

    # p dominates: EE collapses along p…
    assert surface.monotone_along_x(increasing=False)
    assert surface.spread_along_x() > 0.3
    # …while f "has little impact"
    assert surface.spread_along_y() < 0.02

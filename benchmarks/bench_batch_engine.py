"""Perf benchmark: the batch engine vs cold one-by-one dispatch.

The serving-side claim of the batch engine is amortization: a mixed
payload of budget/deadline/Pareto/sweep/evaluate queries should pay for
each distinct (model, axes) grid exactly once — the budget/deadline
items through the grouped ``*_many`` solvers, everything else through
the shared :class:`~repro.optimize.engine.GridStore`.  Two floors:

* a mixed 100-query batch must run **≥5×** faster than dispatching the
  same items one at a time with cold caches (the pre-batch serving
  reality, where every query rebuilt its grid), with every batch item
  numerically identical to its single-dispatch twin;
* a store-served grid (exact repeat, and a sub-grid sliced from a
  cached superset) must come back **≥5×** faster than a cold
  evaluation.
"""

from __future__ import annotations

import time

from conftest import print_artifact

from repro.analysis.report import ascii_table
from repro.api.service import clear_caches, dispatch
from repro.api.types import (
    BatchRequest,
    BudgetQuery,
    DeadlineQuery,
    EvaluateRequest,
    ParetoQuery,
    SweepRequest,
)
from repro.optimize.engine import GridStore, grid_for
from repro.paperdata import paper_model
from repro.units import GHZ

BATCH_SPEEDUP_FLOOR = 5.0
STORE_SPEEDUP_FLOOR = 5.0


def _mixed_items() -> tuple:
    """100 heterogeneous queries over a handful of distinct grids."""
    items = []
    benchmarks = ("FT", "CG", "EP")
    for k in range(45):  # 45 budget queries, 3 grids
        items.append(BudgetQuery(
            benchmark=benchmarks[k % 3], budget_w=1500.0 + 85.0 * k,
        ))
    for k in range(30):  # 30 deadline queries, 3 grids (shared with above)
        items.append(DeadlineQuery(
            benchmark=benchmarks[k % 3], deadline_s=4.0 + 1.5 * k,
        ))
    for k in range(10):  # Pareto menus over the same grids
        items.append(ParetoQuery(benchmark=benchmarks[k % 3]))
    for k in range(10):  # EE-vs-p tables
        items.append(SweepRequest(
            benchmark=benchmarks[k % 3], p_values=(1, 2, 4, 8, 16, 32),
        ))
    for k in range(5):  # scalar point lookups
        items.append(EvaluateRequest(p=2 ** (k + 1)))
    assert len(items) == 100
    return tuple(items)


def test_batch_vs_cold_single_dispatch(benchmark):
    items = _mixed_items()

    # the pre-batch serving reality: every query pays full price
    singles = []
    t_singles = 0.0
    for item in items:
        clear_caches()
        t0 = time.perf_counter()
        singles.append(dispatch(item))
        t_singles += time.perf_counter() - t0

    clear_caches()
    t0 = time.perf_counter()
    batched = dispatch(BatchRequest(items=items))
    t_batch = time.perf_counter() - t0
    speedup = t_singles / t_batch

    # every batch slot is numerically identical to its single twin
    assert len(batched.items) == len(singles)
    for slot, single in zip(batched.items, singles):
        assert slot.ok
        assert slot.response.to_dict() == single.to_dict()

    benchmark.pedantic(
        lambda: dispatch(BatchRequest(items=items)), rounds=3, iterations=1
    )

    body = ascii_table(
        ["quantity", "value"],
        [
            ("batch", f"{len(items)} mixed queries"
                      " (budget/deadline/pareto/sweep/evaluate)"),
            ("one-by-one, cold caches", f"{t_singles * 1e3:.0f} ms"),
            ("one batch dispatch", f"{t_batch * 1e3:.0f} ms"),
            ("speedup", f"{speedup:.1f}x"),
            ("floor", f"{BATCH_SPEEDUP_FLOOR:.0f}x"),
        ],
    )
    print_artifact("api.batch — mixed batch vs cold dispatch", body)

    assert speedup >= BATCH_SPEEDUP_FLOOR, (
        f"batch execution only {speedup:.1f}x faster than cold one-by-one "
        f"dispatch (need >= {BATCH_SPEEDUP_FLOOR:.0f}x)"
    )


def test_store_hit_micro_floor(benchmark):
    """Exact repeats and superset slices must dodge re-evaluation."""
    model, n = paper_model("FT", klass="B")
    store = GridStore()  # isolated: the floor must not ride warm globals
    p_axis = list(range(1, 41))
    f_axis = [(1.6 + 0.2 * i) * GHZ for i in range(7)]
    n_axis = [n * (0.5 + 0.25 * i) for i in range(6)]

    t0 = time.perf_counter()
    grid_for(model, p_values=p_axis, f_values=f_axis, n_values=n_axis,
             store=store)
    t_cold = time.perf_counter() - t0

    t0 = time.perf_counter()
    grid_for(model, p_values=p_axis, f_values=f_axis, n_values=n_axis,
             store=store)
    t_exact = time.perf_counter() - t0

    sub = dict(p_values=p_axis[::2], f_values=f_axis[:3],
               n_values=n_axis[::3])
    t0 = time.perf_counter()
    sliced = grid_for(model, store=store, **sub)
    t_slice = time.perf_counter() - t0

    stats = store.stats()
    assert stats["hits"] == 1 and stats["superset_hits"] == 1, stats

    # the slice must be bit-identical to evaluating the sub-grid directly
    from repro.optimize.grid import evaluate_grid

    direct = evaluate_grid(model, **sub)
    import numpy as np

    for name in ("tp", "ep", "ee", "avg_power"):
        np.testing.assert_array_equal(
            getattr(sliced, name), getattr(direct, name)
        )

    benchmark.pedantic(
        lambda: grid_for(model, store=store, **sub), rounds=3, iterations=1
    )
    exact_speedup = t_cold / t_exact
    slice_speedup = t_cold / t_slice

    body = ascii_table(
        ["quantity", "value"],
        [
            ("grid", f"{len(p_axis)} x {len(f_axis)} x {len(n_axis)}"),
            ("cold evaluation", f"{t_cold * 1e3:.2f} ms"),
            ("exact store hit", f"{t_exact * 1e3:.3f} ms"
                                f"  ({exact_speedup:.0f}x)"),
            ("superset slice", f"{t_slice * 1e3:.3f} ms"
                               f"  ({slice_speedup:.0f}x)"),
            ("floor", f"{STORE_SPEEDUP_FLOOR:.0f}x"),
        ],
    )
    print_artifact("optimize.engine — grid store hit latency", body)

    assert exact_speedup >= STORE_SPEEDUP_FLOOR, (
        f"exact store hit only {exact_speedup:.1f}x faster than cold "
        f"evaluation (need >= {STORE_SPEEDUP_FLOOR:.0f}x)"
    )
    assert slice_speedup >= STORE_SPEEDUP_FLOOR, (
        f"superset slice only {slice_speedup:.1f}x faster than cold "
        f"evaluation (need >= {STORE_SPEEDUP_FLOOR:.0f}x)"
    )

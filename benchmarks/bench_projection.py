"""§V-A methodology: predict large systems from small-scale measurement.

"Given the accuracy of our modeling techniques... we use measurements
from smaller configurations to predict and analyze power-performance
tradeoffs on larger systems."  This bench calibrates FT's workload
coefficients from instrumented runs at p ≤ 8 only, projects energy to
p = 16 and 32, then executes those scales and scores the prediction —
the paper's core value proposition as a single regenerable experiment.
"""

from __future__ import annotations

from conftest import print_artifact

from repro.analysis.report import ascii_table
from repro.npb.workloads import benchmark_for
from repro.validation.projection import fit_projected_workload, verify_projection

CALIBRATION_PS = (1, 2, 4, 8)
TARGET_PS = (16, 32)


def _run(cluster):
    bench, n = benchmark_for("FT", "W", niter=2)
    projected = fit_projected_workload(
        cluster, bench, n, calibration_ps=CALIBRATION_PS, seed=21
    )
    reports = verify_projection(
        cluster, bench, n, projected, target_ps=TARGET_PS, seed=60
    )
    return projected, reports


def test_projection_from_small_scale(benchmark, systemg32):
    projected, reports = benchmark.pedantic(
        lambda: _run(systemg32), rounds=1, iterations=1
    )
    rows = [
        (r.p, round(r.measured_j, 1), round(r.predicted_j, 1),
         round(r.abs_error_pct, 2))
        for r in reports
    ]
    body = ascii_table(
        ["target p", "measured J", "projected J", "|error| %"], rows
    )
    body += (
        f"\ncalibrated at p = {CALIBRATION_PS} only; "
        f"fitted overhead forms: Wco ~ {projected.wco_form}, "
        f"Wmo ~ {projected.wmo_form}"
    )
    print_artifact("§V-A — small-scale calibration, large-scale prediction", body)

    for r in reports:
        assert r.abs_error_pct < 12.0, (r.p, r.abs_error_pct)

"""Figure 3: model-vs-measured energy for the NAS suite on Dori, p=4.

Paper: bar chart of actual vs. estimated joules for each suite member on
the 4-node Dori configuration; "model accuracy for all the benchmarks are
over 95%" (mean error < 5%).

Long-running members are iteration-sampled (model and kernel both use the
reduced count); EP/FT/IS/MG run at their full class-B iteration counts.
"""

from __future__ import annotations

from conftest import print_artifact

from repro.analysis.report import ascii_table
from repro.npb.workloads import SUITE_BENCHMARKS
from repro.validation.harness import validate_suite

NITER_SAMPLING = {"CG": 375, "LU": 50, "BT": 40, "SP": 80}


def _run(dori8):
    return validate_suite(
        dori8,
        SUITE_BENCHMARKS,
        klass="B",
        p=4,
        niter_overrides=NITER_SAMPLING,
        seed=1,
    )


def test_fig3_dori_suite_validation(benchmark, dori8):
    results = benchmark.pedantic(lambda: _run(dori8), rounds=1, iterations=1)
    rows = [
        (
            r.benchmark,
            round(r.measured_j / 1000, 2),
            round(r.predicted_j / 1000, 2),
            round(r.abs_error_pct, 2),
        )
        for r in results
    ]
    mean_err = sum(r.abs_error_pct for r in results) / len(results)
    body = ascii_table(
        ["benchmark", "measured kJ", "predicted kJ", "|error| %"], rows
    )
    body += f"\nmean |error| = {mean_err:.2f}%   (paper: <5% per member, Fig. 3)"
    print_artifact("Figure 3 — Dori suite validation (p=4, class B)", body)

    assert mean_err < 5.0
    assert all(r.abs_error_pct < 10.0 for r in results)
    # energies land in the paper's 0–200 kJ axis range
    assert all(0 < r.measured_j < 200_000 for r in results)

"""§II positioning: EE against the related-work metrics.

The paper's related-work argument in one table: performance
isoefficiency sees only time, ERE flags energy loss without attributing
it, and only EEF names the responsible overhead.  This bench evaluates
all metrics side by side for CG and reports the parallelism at which an
energy-blind analysis (perf-efficiency ≈ EE assumption) starts lying.
"""

from __future__ import annotations

from conftest import print_artifact

from repro.analysis.comparison import divergence_point, metric_comparison
from repro.analysis.report import ascii_table
from repro.paperdata import PAPER_CG_N, paper_model

P_VALUES = [1, 4, 16, 64, 256, 1024]


def _run():
    model, _ = paper_model("CG", klass="B")
    rows = metric_comparison(model, n=PAPER_CG_N, p_values=P_VALUES)
    return rows, divergence_point(rows, tolerance=0.05)


def test_metric_comparison_cg(benchmark):
    rows, p_div = benchmark(_run)
    body = ascii_table(
        ["p", "perf-eff (Grama)", "To (s)", "ERE (Jiang)", "EEF", "EE", "EEF attribution"],
        [r.as_tuple() for r in rows],
    )
    body += (
        f"\nenergy- and performance-efficiency diverge beyond 5% at p = {p_div}"
        "\n(only the EEF column says *why* — the paper's §II-D contrast)"
    )
    print_artifact("§II — metric face-off on CG", body)

    # perf-efficiency always underestimates EE here (energy has an idle floor)
    for r in rows[1:]:
        assert r.ee != r.perf_efficiency
    # divergence happens within the studied scale
    assert p_div is not None and p_div <= 256
    # every parallel row carries an attribution; no other metric does
    assert all(r.attribution != "none" for r in rows[1:])

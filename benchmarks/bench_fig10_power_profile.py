"""Figure 10: component power profile of an MPI_FFT run.

Paper: PowerPack traces of cpu/mem/disk/motherboard power over ~29 s of
the HPCC MPI_FFT benchmark; each component fluctuates above its idle
line, and the CPU's area splits into the idle region ``α·T·P_idle`` and
the active region ``Wc·tc·ΔPc`` — the decomposition Eq. (9) integrates.

Regenerated with the FT kernel (HPCC's MPI_FFT is the same computation)
on one SystemG node pair, sampled at PowerPack-like rates.
"""

from __future__ import annotations

from conftest import print_artifact

from repro.analysis.report import ascii_table
from repro.npb.ft import FtBenchmark
from repro.powerpack.analysis import figure10_decomposition
from repro.powerpack.profiler import PowerProfiler
from repro.simmpi.engine import SimConfig, SimEngine
from repro.validation.harness import default_noise


def _profile(cluster):
    bench, _ = FtBenchmark.for_class("W", niter=6)
    n = bench.n_for_class("W")
    config = SimConfig(
        alpha=bench.alpha, cpi_factor=bench.cpi_factor, noise=default_noise(7)
    )
    result = SimEngine(cluster, config).run(bench.make_program(n, 2), size=2)
    profiler = PowerProfiler(
        cluster, sample_period=max(result.total_time / 120, 1e-4)
    )
    return result, profiler.profile(result, label="MPI_FFT")


def test_fig10_component_power_profile(benchmark, systemg32):
    result, profile = benchmark.pedantic(
        lambda: _profile(systemg32), rounds=1, iterations=1
    )
    decomp = figure10_decomposition(profile, systemg32, result)

    rows = [
        (comp, round(idle, 1), round(active, 1))
        for comp, idle, active in decomp.rows()
    ]
    body = ascii_table(["component", "idle J (below line)", "active J (shaded)"], rows)

    # a compact textual power trace of the CPU series on node 0
    cpu = profile.node_series(0, "cpu")
    step = max(1, len(cpu.times) // 24)
    sparkline = " ".join(f"{w:5.0f}" for w in cpu.watts[::step])
    body += f"\nnode0 CPU watts over time: {sparkline}"
    body += f"\nphases: {[(round(t, 4), name) for t, name in profile.phase_marks]}"
    print_artifact("Figure 10 — MPI_FFT component power profile", body)

    # every component's trace sits on/above its idle line
    node = systemg32.nodes[0]
    idle_levels = {
        "cpu": node.power.cpu.p_idle,
        "memory": node.power.memory.p_idle,
        "io": node.power.io.p_idle,
        "motherboard": node.power.others,
    }
    for comp, level in idle_levels.items():
        series = profile.node_series(0, comp)
        assert (series.watts >= level - 1e-9).all(), comp

    # the CPU fluctuates: the butterfly phase pushes it well above idle…
    assert cpu.watts.max() > idle_levels["cpu"] + 0.3 * node.power.cpu.delta_p
    # …while memory-streaming phases let it sag back toward the idle line
    assert cpu.watts.min() < idle_levels["cpu"] + 0.25 * node.power.cpu.delta_p
    spread = float(cpu.watts.max() - cpu.watts.min())
    assert spread > 0.3 * node.power.cpu.delta_p

    # Eq. (9): idle + active areas reconstruct the measured energy
    assert abs(decomp.total - profile.exact_energy) / profile.exact_energy < 1e-9
    # and the active CPU area is the model's Wc·tc·ΔPc (within kernel bias)
    assert decomp.active["cpu"] > 0

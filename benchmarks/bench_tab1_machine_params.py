"""Table 1: deriving the machine-dependent parameter vector Θ1.

The paper measures each Table-1 entry with a dedicated tool (Perfmon →
tc, LMbench lat_mem_rd → tm, MPPTest → ts/tw, PowerPack → power levels).
This bench runs the full toolchain on both testbeds and prints measured
vs. specification values; measurement must agree within tool-appropriate
tolerances.
"""

from __future__ import annotations

from conftest import print_artifact

from repro.analysis.report import ascii_table, format_si
from repro.validation.calibration import calibrate_machine_params, derive_machine_params


def _calibrate(cluster):
    return (
        calibrate_machine_params(cluster, seed=13),
        derive_machine_params(cluster),
    )


def _render(cluster_name, cal, spec):
    rows = [
        ("tc", format_si(cal.params.tc, "s"), format_si(spec.tc, "s"), "Perfmon CPI loop"),
        ("tm", format_si(cal.params.tm, "s"), format_si(spec.tm, "s"), "lat_mem_rd tail plateau"),
        ("ts", format_si(cal.params.ts, "s"), format_si(spec.ts, "s"), "MPPTest intercept"),
        ("tw", format_si(cal.params.tw, "s/B"), format_si(spec.tw, "s/B"), "MPPTest slope"),
        ("dPc", f"{cal.params.delta_pc:.1f}W", f"{spec.delta_pc:.1f}W", "PowerPack compute run"),
        ("dPm", f"{cal.params.delta_pm:.1f}W", f"{spec.delta_pm:.1f}W", "PowerPack memory run"),
        ("Pc-idle", f"{cal.params.pc_idle:.1f}W", f"{spec.pc_idle:.1f}W", "PowerPack idle run"),
        ("Psys-idle", f"{cal.params.p_system_idle:.1f}W", f"{spec.p_system_idle:.1f}W", "sum of idle floors"),
    ]
    return ascii_table(
        [f"{cluster_name} param", "measured", "spec", "tool"], rows
    )


def test_tab1_system_g_parameters(benchmark, systemg32):
    cal, spec = benchmark.pedantic(
        lambda: _calibrate(systemg32), rounds=1, iterations=1
    )
    print_artifact("Table 1 — SystemG machine parameters", _render("SystemG", cal, spec))
    assert cal.params.tc == spec.tc * 1.0 or abs(cal.params.tc / spec.tc - 1) < 0.1
    assert abs(cal.params.tm / spec.tm - 1) < 0.1
    assert abs(cal.params.ts / spec.ts - 1) < 0.25
    assert abs(cal.params.tw / spec.tw - 1) < 0.1
    assert abs(cal.params.delta_pc / spec.delta_pc - 1) < 0.1
    assert abs(cal.params.p_system_idle / spec.p_system_idle - 1) < 0.05


def test_tab1_dori_parameters(benchmark, dori8):
    cal, spec = benchmark.pedantic(
        lambda: _calibrate(dori8), rounds=1, iterations=1
    )
    print_artifact("Table 1 — Dori machine parameters", _render("Dori", cal, spec))
    assert abs(cal.params.tm / spec.tm - 1) < 0.1
    assert abs(cal.params.ts / spec.ts - 1) < 0.25
    assert abs(cal.params.tw / spec.tw - 1) < 0.1
    # the two fabrics must be clearly distinguishable from measurement alone
    assert cal.params.ts > 5 * 4e-6

"""Perf floor: obs instrumentation must be nearly free on the hot path.

The ``repro.obs`` layer wraps the grid hot path (``grid.evaluate``
spans), so its cost rides *every* cold query the serving stack answers.
The contract: one full span cycle (construct, enter, exit, histogram
observation) must cost **<3%** of one grid evaluation.

Estimator note: a naive A/B timing (grid bare vs grid under span) cannot
resolve this — allocator/GC jitter at the millisecond scale is ±3%,
an order of magnitude larger than the microsecond effect under test.
Instead the bench prices the span cycle exactly in a tight loop (stable
to nanoseconds over 10^5 iterations), prices the grid evaluation
best-of-rounds, and floors the *ratio* — the per-query overhead the
serving stack actually pays.
"""

from __future__ import annotations

import itertools
import time

from conftest import print_artifact

from repro.analysis.report import ascii_table
from repro.obs import metrics, span, trace_context, trace_store
from repro.optimize.grid import evaluate_grid
from repro.paperdata import paper_model
from repro.units import GHZ

#: span cost / grid-evaluation cost must stay under this.
OVERHEAD_CEILING = 0.03

_GRID_ROUNDS = 25
_PRIMITIVE_CALLS = 100_000


def _grid_kwargs():
    model, n = paper_model("FT", klass="B")
    return model, dict(
        p_values=list(range(1, 41)),
        f_values=[(1.6 + 0.2 * i) * GHZ for i in range(7)],
        n_values=[n * (0.5 + 0.25 * i) for i in range(6)],
    )


def _timed_per_call(fn, calls: int) -> float:
    t0 = time.perf_counter()
    for _ in range(calls):
        fn()
    return (time.perf_counter() - t0) / calls


def _span_cycle_s() -> float:
    """Seconds per full span cycle, as the engine pays it per grid call."""

    def cycle():
        with span("bench.grid"):
            pass

    cycle()  # intern the histogram child before timing
    return _timed_per_call(cycle, _PRIMITIVE_CALLS)


def _traced_span_cycle_s() -> float:
    """Span cycle with trace retention live, as the server pays it.

    Every iteration opens a fresh trace id so the cycle prices the full
    retained path: trace-context bind, span tree bookkeeping, TraceStore
    record, and ring eviction — not the cheap post-cap dropped branch.
    """
    ids = map("bench-{}".format, itertools.count())

    def cycle():
        with trace_context(next(ids)):
            with span("bench.grid"):
                pass

    cycle()  # warm the store singleton and the histogram child
    per_call = _timed_per_call(cycle, _PRIMITIVE_CALLS)
    trace_store().clear()
    return per_call


def test_span_overhead_on_grid_hot_path(benchmark):
    model, kwargs = _grid_kwargs()

    def grid():
        evaluate_grid(model, **kwargs)

    grid()  # warm imports and the allocator
    best_grid = min(
        _timed_per_call(grid, 1) for _ in range(_GRID_ROUNDS)
    )
    span_s = _span_cycle_s()
    traced_s = _traced_span_cycle_s()
    overhead = span_s / best_grid
    traced_overhead = traced_s / best_grid
    benchmark.pedantic(grid, rounds=3, iterations=1)

    body = ascii_table(
        ["quantity", "value"],
        [
            ("grid", "40 x 7 x 6 (p x f x n)"),
            ("grid evaluation (best)", f"{best_grid * 1e3:.3f} ms"),
            ("span cycle", f"{span_s * 1e6:.2f} us"),
            ("span cycle (retained trace)", f"{traced_s * 1e6:.2f} us"),
            ("overhead per cold query", f"{overhead * 100:.3f} %"),
            ("overhead with retention", f"{traced_overhead * 100:.3f} %"),
            ("ceiling", f"{OVERHEAD_CEILING * 100:.0f} %"),
        ],
    )
    print_artifact("obs — span overhead on the grid hot path", body)

    assert overhead < OVERHEAD_CEILING, (
        f"span instrumentation costs {overhead * 100:.2f}% of a grid "
        f"evaluation (ceiling {OVERHEAD_CEILING * 100:.0f}%)"
    )
    assert traced_overhead < OVERHEAD_CEILING, (
        f"retained-trace span cycle costs {traced_overhead * 100:.2f}% of "
        f"a grid evaluation (ceiling {OVERHEAD_CEILING * 100:.0f}%)"
    )


def test_primitive_costs(benchmark):
    """Attribution table: nanoseconds per obs primitive call."""
    registry = metrics.Registry()
    counter = registry.counter("bench_calls_total", "bench").labels()
    histogram = registry.histogram(
        "bench_seconds", "bench", labelnames=("name",)
    ).labels("x")
    probe = span("bench.primitive")
    with probe:
        pass

    def span_cycle():
        with probe:
            pass

    counter_ns = _timed_per_call(lambda: counter.inc(), _PRIMITIVE_CALLS) * 1e9
    observe_ns = _timed_per_call(
        lambda: histogram.observe(0.001), _PRIMITIVE_CALLS
    ) * 1e9
    span_ns = _timed_per_call(span_cycle, _PRIMITIVE_CALLS) * 1e9
    benchmark.pedantic(span_cycle, rounds=3, iterations=1000)

    body = ascii_table(
        ["primitive", "cost per call"],
        [
            ("Counter.inc()", f"{counter_ns:.0f} ns"),
            ("Histogram.observe()", f"{observe_ns:.0f} ns"),
            ("span enter+exit", f"{span_ns:.0f} ns"),
        ],
    )
    print_artifact("obs — primitive costs", body)

    # sanity, not a tight floor: a span cycle is two clock reads plus one
    # observe; if it ever costs more than 100µs something broke badly
    assert span_ns < 100_000

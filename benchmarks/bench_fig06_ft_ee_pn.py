"""Figure 6: FT's EE surface over (p, n) at f = 2.8 GHz.

Paper: "p still dominates the variance of energy efficiency.  It is also
obvious that increasing the problem size n does enhance the energy
efficiency."
"""

from __future__ import annotations

from conftest import print_artifact

from repro.analysis.report import ascii_heatmap, format_si
from repro.analysis.surface import ee_surface
from repro.paperdata import PAPER_SYSTEM_G_FREQ, paper_model

P_VALUES = [1, 4, 16, 64, 256, 1024]


def _surface():
    model, n_b = paper_model("FT", klass="B")
    n_values = [n_b / 16, n_b / 4, n_b, 4 * n_b, 16 * n_b]
    return ee_surface(
        model, p_values=P_VALUES, n_values=n_values, f=PAPER_SYSTEM_G_FREQ
    )


def test_fig6_ft_ee_over_p_and_n(benchmark):
    surface = benchmark(_surface)
    body = ascii_heatmap(
        surface.values,
        [int(p) for p in surface.x],
        [format_si(n) for n in surface.y],
        title="EE(p, n) — FT at f=2.8 GHz (rows: p, cols: grid points)",
        lo=0.0,
        hi=1.0,
    )
    print_artifact("Figure 6 — FT EE(p, n)", body)

    # growing n enhances EE at every p
    assert surface.monotone_along_y(increasing=True)
    # p still dominates the variance
    assert surface.spread_along_x() > surface.spread_along_y()
    # the n-effect is strongest where scaling hurt most (large p)
    row_small_p = surface.values[0]
    row_large_p = surface.values[-1]
    assert (row_large_p.max() - row_large_p.min()) > (
        row_small_p.max() - row_small_p.min()
    )

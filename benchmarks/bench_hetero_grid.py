"""Perf benchmark: the vectorized mixed-pool evaluator vs the scalar loop.

The hetero subsystem's claim is that searching the (per-pool counts ×
per-pool rungs × split policy) allocation space is a batch problem: Θ2
factors over distinct totals, Θ1 over (pool, rung), and everything else
is elementwise — so :func:`repro.hetero.space.evaluate_space` must beat
the per-allocation scalar loop (build a
:class:`~repro.core.hetero.HeteroIsoEnergyModel`, call ``evaluate``) by
**≥5×** on a ~500-allocation space, with every allocation numerically
equivalent.  A second floor holds the store's group-aware cache to ≥5×
over re-evaluation, mirroring the homogeneous store floors.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import print_artifact

from repro.analysis.report import ascii_table
from repro.hetero.solve import space_for
from repro.hetero.space import (
    PoolSpec,
    evaluate_space,
    hetero_grid,
    scalar_space_points,
)
from repro.optimize.engine import GridStore

HETERO_SPEEDUP_FLOOR = 5.0
STORE_SPEEDUP_FLOOR = 5.0


def _space():
    """Two real machines × many counts × several rungs × both policies."""
    return space_for(
        "FT",
        "B",
        pools=(
            PoolSpec(
                "fast", "systemg",
                (1, 2, 4, 8, 16, 24, 32, 48), (2.0, 2.4, 2.8),
            ),
            PoolSpec("slow", "dori", (1, 2, 4, 6, 8), (1.8, 2.0)),
        ),
        policies=("balanced", "uniform"),
    )


def test_hetero_grid_vs_scalar(benchmark):
    space = _space()

    t0 = time.perf_counter()
    points = scalar_space_points(space)
    t_scalar = time.perf_counter() - t0

    t0 = time.perf_counter()
    grid = evaluate_space(space)
    t_vec = time.perf_counter() - t0
    speedup = t_scalar / t_vec

    # every allocation numerically equivalent to its scalar twin
    assert grid.size == len(points)
    for name in ("tp", "ep", "ee", "avg_power"):
        np.testing.assert_allclose(
            getattr(grid, name), [getattr(p, name) for p in points],
            rtol=1e-9, err_msg=name,
        )

    benchmark.pedantic(lambda: evaluate_space(space), rounds=3, iterations=1)

    body = ascii_table(
        ["quantity", "value"],
        [
            ("space", f"{grid.size} allocations "
                      f"({grid.mixes} mixes x {len(grid.policies)} policies)"),
            ("scalar per-allocation loop", f"{t_scalar * 1e3:.0f} ms"),
            ("vectorized evaluate_space", f"{t_vec * 1e3:.1f} ms"),
            ("speedup", f"{speedup:.1f}x"),
            ("floor", f"{HETERO_SPEEDUP_FLOOR:.0f}x"),
        ],
    )
    print_artifact("hetero.space — vectorized vs scalar mixed-pool sweep", body)

    assert speedup >= HETERO_SPEEDUP_FLOOR, (
        f"vectorized mixed-pool evaluation only {speedup:.1f}x faster than "
        f"the scalar loop (need >= {HETERO_SPEEDUP_FLOOR:.0f}x)"
    )


def test_hetero_store_hit_floor(benchmark):
    """A repeated space must come back from the group-aware cache."""
    space = _space()
    store = GridStore()  # isolated: the floor must not ride warm globals

    t0 = time.perf_counter()
    first = hetero_grid(space, store=store)
    t_cold = time.perf_counter() - t0

    t0 = time.perf_counter()
    again = hetero_grid(space, store=store)
    t_hit = time.perf_counter() - t0

    assert again is first
    stats = store.stats()
    assert stats["hetero_hits"] == 1 and stats["hetero_misses"] == 1

    benchmark.pedantic(
        lambda: hetero_grid(space, store=store), rounds=3, iterations=1
    )
    speedup = t_cold / t_hit

    body = ascii_table(
        ["quantity", "value"],
        [
            ("space", f"{first.size} allocations"),
            ("cold evaluation", f"{t_cold * 1e3:.2f} ms"),
            ("store hit", f"{t_hit * 1e3:.3f} ms  ({speedup:.0f}x)"),
            ("floor", f"{STORE_SPEEDUP_FLOOR:.0f}x"),
        ],
    )
    print_artifact("hetero.space — group-aware store hit latency", body)

    assert speedup >= STORE_SPEEDUP_FLOOR, (
        f"hetero store hit only {speedup:.1f}x faster than cold evaluation "
        f"(need >= {STORE_SPEEDUP_FLOOR:.0f}x)"
    )

"""Perf benchmark: batched partition scoring vs the scalar per-split loop.

The federation partitioner's hot path is scoring candidate budget splits
against per-shard capability curves — the exhaustive strategy scores a
whole cartesian grid of them, and the benchmark a site operator cares
about is "how many what-if splits per second".  This bench builds a
three-shard site over a four-job mix, scores 5,000 random candidate
splits both ways, checks exact numerical equivalence, and holds the
vectorized :func:`repro.federation.partition.score_splits` to a ≥5×
wall-clock speedup over the per-split reference
(:func:`repro.federation.partition.score_split_scalar`).
"""

from __future__ import annotations

import time

import numpy as np
from conftest import print_artifact

from repro.analysis.report import ascii_table
from repro.federation.partition import (
    score_split_scalar,
    score_splits,
    shard_profiles,
)
from repro.federation.registry import ShardRegistry, ShardSpec
from repro.optimize.schedule import Job

N_SPLITS = 5_000
SPEEDUP_FLOOR = 5.0

JOBS = [
    Job("fourier-1", "FT", "W"),
    Job("fourier-2", "FT", "W"),
    Job("conjgrad", "CG", "W"),
    Job("montecarlo", "EP", "W"),
]


def _site():
    registry = ShardRegistry()
    registry.register_hypothetical(
        "systemg-fastnet", base="systemg",
        net_startup_scale=0.25, net_per_byte_scale=0.25,
    )
    return registry.build_site([
        ShardSpec("bulk", "systemg", 64, 8_000.0),
        ShardSpec("green", "dori", 8, 1_500.0),
        ShardSpec("nextgen", "systemg-fastnet", 32, 4_000.0),
    ])


def test_batched_split_scoring_speedup(benchmark):
    profiles = shard_profiles(_site(), JOBS)
    rng = np.random.default_rng(42)
    splits = rng.uniform(0.0, 9_000.0, size=(N_SPLITS, len(profiles)))

    t0 = time.perf_counter()
    ref = np.array([score_split_scalar(profiles, s) for s in splits])
    t_scalar = time.perf_counter() - t0

    t0 = time.perf_counter()
    bulk = score_splits(profiles, splits)
    t_bulk = time.perf_counter() - t0

    benchmark.pedantic(
        lambda: score_splits(profiles, splits), rounds=3, iterations=1
    )
    speedup = t_scalar / t_bulk

    np.testing.assert_allclose(bulk, ref)  # exact same step function

    rungs = sum(len(p.powers) for p in profiles)
    body = ascii_table(
        ["quantity", "value"],
        [
            ("site", f"{len(profiles)} shards, {rungs} curve rungs total"),
            ("splits scored", N_SPLITS),
            ("scalar per-split loop", f"{t_scalar * 1e3:.1f} ms"),
            ("vectorized batch", f"{t_bulk * 1e3:.2f} ms"),
            ("speedup", f"{speedup:.1f}x"),
            ("floor", f"{SPEEDUP_FLOOR:.0f}x"),
        ],
    )
    print_artifact("federation.partition — batched split scoring", body)

    assert speedup >= SPEEDUP_FLOOR, (
        f"batched split scoring only {speedup:.1f}x faster than the "
        f"scalar per-split loop (need >= {SPEEDUP_FLOOR:.0f}x)"
    )
